package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestSeriesWindowing(t *testing.T) {
	s := NewSeries(50 * time.Millisecond)
	s.Add(10*time.Millisecond, 1)
	s.Add(49*time.Millisecond, 3)
	s.Add(50*time.Millisecond, 5)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	w0 := s.At(0)
	if w0.Count != 2 || w0.Sum != 4 || w0.Min != 1 || w0.Max != 3 {
		t.Fatalf("window 0 = %+v", w0)
	}
	if got := s.At(1).Mean(); got != 5 {
		t.Fatalf("window 1 mean = %v", got)
	}
}

func TestSeriesNegativeTimeClamped(t *testing.T) {
	s := NewSeries(time.Millisecond)
	s.Add(-time.Second, 2)
	if s.At(0).Count != 1 {
		t.Fatal("negative time not clamped into window 0")
	}
}

func TestSeriesOutOfRangeReadsEmpty(t *testing.T) {
	s := NewSeries(time.Millisecond)
	if w := s.At(99); w.Count != 0 {
		t.Fatalf("out-of-range window = %+v", w)
	}
	if w := s.At(-1); w.Count != 0 {
		t.Fatalf("negative window = %+v", w)
	}
}

func TestSeriesIncrCounts(t *testing.T) {
	s := NewSeries(50 * time.Millisecond)
	for i := 0; i < 7; i++ {
		s.Incr(20 * time.Millisecond)
	}
	s.Incr(60 * time.Millisecond)
	counts := s.Counts()
	if counts[0] != 7 || counts[1] != 1 {
		t.Fatalf("Counts = %v", counts)
	}
}

func TestSeriesStart(t *testing.T) {
	s := NewSeries(50 * time.Millisecond)
	if s.Start(3) != 150*time.Millisecond {
		t.Fatalf("Start(3) = %v", s.Start(3))
	}
}

func TestSeriesPeakWindow(t *testing.T) {
	s := NewSeries(time.Millisecond)
	s.Add(0, 5)
	s.Add(3*time.Millisecond, 50)
	s.Add(5*time.Millisecond, 20)
	idx, peak := s.PeakWindow()
	if idx != 3 || peak != 50 {
		t.Fatalf("PeakWindow = %d,%v", idx, peak)
	}
}

func TestSeriesPeakWindowEmpty(t *testing.T) {
	s := NewSeries(time.Millisecond)
	if idx, _ := s.PeakWindow(); idx != -1 {
		t.Fatalf("PeakWindow on empty = %d", idx)
	}
}

func TestSeriesSlice(t *testing.T) {
	s := NewSeries(10 * time.Millisecond)
	for i := 0; i < 10; i++ {
		s.Add(time.Duration(i)*10*time.Millisecond, float64(i))
	}
	got := s.Slice(20*time.Millisecond, 50*time.Millisecond)
	want := []float64{2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("Slice = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slice = %v, want %v", got, want)
		}
	}
}

func TestSeriesSliceReversedBounds(t *testing.T) {
	s := NewSeries(10 * time.Millisecond)
	s.Add(0, 1)
	if got := s.Slice(30*time.Millisecond, 0); len(got) != 3 {
		t.Fatalf("reversed Slice len = %d", len(got))
	}
}

func TestNewSeriesPanicsOnZeroWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSeries(0) did not panic")
		}
	}()
	NewSeries(0)
}

// Property: sum of window counts equals number of Add calls, and each
// window's Min <= Mean <= Max.
func TestQuickSeriesConservation(t *testing.T) {
	f := func(points []uint16) bool {
		s := NewSeries(7 * time.Millisecond)
		for _, p := range points {
			s.Add(time.Duration(p)*time.Millisecond, float64(p%97))
		}
		var total uint64
		for i := 0; i < s.Len(); i++ {
			w := s.At(i)
			total += w.Count
			if w.Count > 0 && (w.Min > w.Mean() || w.Mean() > w.Max) {
				return false
			}
		}
		return total == uint64(len(points))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineMoments(t *testing.T) {
	var o Online
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		o.Add(v)
	}
	if o.N() != 8 {
		t.Fatalf("N = %d", o.N())
	}
	if o.Mean() != 5 {
		t.Fatalf("Mean = %v", o.Mean())
	}
	if math.Abs(o.StdDev()-2) > 1e-9 {
		t.Fatalf("StdDev = %v, want 2", o.StdDev())
	}
	if o.Min() != 2 || o.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", o.Min(), o.Max())
	}
}

func TestOnlineEmptyAndSingle(t *testing.T) {
	var o Online
	if o.Variance() != 0 || o.Mean() != 0 {
		t.Fatal("empty Online not zeroed")
	}
	o.Add(42)
	if o.Variance() != 0 {
		t.Fatalf("single-sample variance = %v", o.Variance())
	}
	if o.Mean() != 42 {
		t.Fatalf("Mean = %v", o.Mean())
	}
}

// Property: Online mean/variance match the naive two-pass computation.
func TestQuickOnlineMatchesNaive(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var o Online
		var sum float64
		for _, v := range raw {
			o.Add(float64(v))
			sum += float64(v)
		}
		mean := sum / float64(len(raw))
		var m2 float64
		for _, v := range raw {
			d := float64(v) - mean
			m2 += d * d
		}
		variance := m2 / float64(len(raw))
		return math.Abs(o.Mean()-mean) < 1e-6 && math.Abs(o.Variance()-variance) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if r := Pearson(x, y); math.Abs(r-1) > 1e-9 {
		t.Fatalf("Pearson = %v, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if r := Pearson(x, neg); math.Abs(r+1) > 1e-9 {
		t.Fatalf("Pearson = %v, want -1", r)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if r := Pearson([]float64{1}, []float64{2}); r != 0 {
		t.Fatalf("Pearson on single point = %v", r)
	}
	if r := Pearson([]float64{3, 3, 3}, []float64{1, 2, 3}); r != 0 {
		t.Fatalf("Pearson with zero variance = %v", r)
	}
	if r := Pearson(nil, nil); r != 0 {
		t.Fatalf("Pearson(nil,nil) = %v", r)
	}
}

func TestPearsonUnequalLengthsUsesPrefix(t *testing.T) {
	x := []float64{1, 2, 3, 100, 200}
	y := []float64{2, 4, 6}
	if r := Pearson(x, y); math.Abs(r-1) > 1e-9 {
		t.Fatalf("Pearson on prefix = %v, want 1", r)
	}
}

// Property: Pearson is always within [-1, 1].
func TestQuickPearsonBounded(t *testing.T) {
	f := func(x, y []int8) bool {
		xf := make([]float64, len(x))
		yf := make([]float64, len(y))
		for i, v := range x {
			xf[i] = float64(v)
		}
		for i, v := range y {
			yf[i] = float64(v)
		}
		r := Pearson(xf, yf)
		return r >= -1.0000001 && r <= 1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestExactQuantile(t *testing.T) {
	sample := []float64{9, 1, 5, 3, 7}
	if q := ExactQuantile(sample, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := ExactQuantile(sample, 1); q != 9 {
		t.Fatalf("q1 = %v", q)
	}
	if q := ExactQuantile(sample, 0.5); q != 5 {
		t.Fatalf("q0.5 = %v", q)
	}
	if q := ExactQuantile(nil, 0.5); q != 0 {
		t.Fatalf("nil sample = %v", q)
	}
	// Input must not be mutated.
	if sample[0] != 9 {
		t.Fatal("ExactQuantile mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	s := Summarize(&h)
	if s.Count != 100 || s.Max != 100*time.Millisecond {
		t.Fatalf("summary = %+v", s)
	}
	if s.P50 < 45*time.Millisecond || s.P50 > 55*time.Millisecond {
		t.Fatalf("p50 = %v", s.P50)
	}
	if s.String() == "" || s.Mean != 50500*time.Microsecond {
		t.Fatalf("summary = %v", s)
	}
	if s.P99 < s.P90 || s.P999 < s.P99 {
		t.Fatalf("quantiles not ordered: %+v", s)
	}
}

package stats_test

import (
	"fmt"
	"time"

	"millibalance/internal/stats"
)

func ExampleHistogram() {
	var h stats.Histogram
	for i := 0; i < 99; i++ {
		h.Record(2 * time.Millisecond)
	}
	h.Record(1200 * time.Millisecond) // one VLRT straggler
	fmt.Println("count:", h.Count())
	fmt.Println("mean:", h.Mean())
	fmt.Println("VLRT(>=1s):", h.CountAtOrAbove(time.Second))
	// Output:
	// count: 100
	// mean: 13.98ms
	// VLRT(>=1s): 1
}

func ExampleSeries() {
	s := stats.NewSeries(50 * time.Millisecond)
	s.Add(10*time.Millisecond, 5)  // window 0
	s.Add(20*time.Millisecond, 15) // window 0
	s.Add(60*time.Millisecond, 40) // window 1
	fmt.Println("windows:", s.Len())
	fmt.Printf("window 0 mean: %.0f\n", s.At(0).Mean())
	idx, peak := s.PeakWindow()
	fmt.Printf("peak: window %d = %.0f\n", idx, peak)
	// Output:
	// windows: 2
	// window 0 mean: 10
	// peak: window 1 = 40
}

func ExamplePearson() {
	queue := []float64{1, 1, 50, 1, 1}
	cpu := []float64{20, 20, 100, 20, 20}
	fmt.Printf("r = %.2f\n", stats.Pearson(queue, cpu))
	// Output:
	// r = 1.00
}

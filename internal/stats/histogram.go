// Package stats provides the statistical primitives the experiment harness
// renders figures and tables from: a log-bucketed latency histogram,
// fixed-width windowed time series, online moment accumulators, and
// Pearson correlation.
package stats

import (
	"fmt"
	"math/bits"
	"time"
)

// numBuckets covers values up to 2^63 microseconds without the bucket
// bounds overflowing uint64 — far beyond the largest time.Duration
// (~2^63 nanoseconds) that can be recorded.
const numBuckets = 3712

// Histogram is a log-bucketed latency histogram with ~1.6% relative
// resolution (64 sub-buckets per power of two) and exact count, sum, min
// and max. Values are recorded at microsecond granularity; negative
// durations count as zero. The zero value is an empty histogram ready
// for use.
type Histogram struct {
	counts [numBuckets]uint64
	total  uint64
	sum    time.Duration
	min    time.Duration
	max    time.Duration
}

// bucketIndex maps a microsecond value to its bucket. Values below 128
// map directly; larger values keep their top seven bits, yielding
// contiguous, monotonically ordered buckets.
func bucketIndex(us uint64) int {
	if us < 128 {
		return int(us)
	}
	shift := bits.Len64(us) - 7
	idx := shift*64 + int(us>>shift)
	if idx >= numBuckets {
		return numBuckets - 1
	}
	return idx
}

// bucketLower returns the smallest microsecond value mapping to bucket i.
func bucketLower(i int) uint64 {
	if i < 128 {
		return uint64(i)
	}
	shift := i/64 - 1
	top := uint64(i%64 + 64)
	return top << shift
}

// bucketUpper returns the exclusive upper microsecond bound of bucket i.
func bucketUpper(i int) uint64 {
	if i < 127 {
		return uint64(i) + 1
	}
	shift := i/64 - 1
	top := uint64(i%64+64) + 1
	return top << shift
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	us := uint64((d + 999) / 1000) // round ns up to whole microseconds
	h.counts[bucketIndex(us)]++
	h.total++
	h.sum += d
	if h.total == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count reports the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.total }

// Sum reports the exact sum of recorded observations.
func (h *Histogram) Sum() time.Duration { return h.sum }

// Mean reports the exact mean, or zero for an empty histogram.
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return h.sum / time.Duration(h.total)
}

// Min reports the smallest recorded observation (zero when empty).
func (h *Histogram) Min() time.Duration { return h.min }

// Max reports the largest recorded observation (zero when empty).
func (h *Histogram) Max() time.Duration { return h.max }

// Quantile returns an estimate of the q-quantile (0 <= q <= 1) with the
// histogram's bucket resolution. It returns zero for an empty histogram.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(q * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum > rank {
			mid := (bucketLower(i) + bucketUpper(i)) / 2
			d := time.Duration(mid) * time.Microsecond
			if d > h.max {
				d = h.max
			}
			if d < h.min {
				d = h.min
			}
			return d
		}
	}
	return h.max
}

// CountAtOrAbove estimates how many observations were >= d, with bucket
// resolution (buckets straddling d count entirely if their midpoint is
// at or above d).
func (h *Histogram) CountAtOrAbove(d time.Duration) uint64 {
	if d <= 0 {
		return h.total
	}
	us := uint64(d / 1000)
	var n uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if (bucketLower(i)+bucketUpper(i))/2 >= us {
			n += c
		}
	}
	return n
}

// CountBelow estimates how many observations were < d, with bucket
// resolution.
func (h *Histogram) CountBelow(d time.Duration) uint64 {
	return h.total - h.CountAtOrAbove(d)
}

// Merge adds all of other's observations into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.total == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.total == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.total += other.total
	h.sum += other.sum
}

// Bucket is one non-empty histogram bucket, for rendering distributions.
type Bucket struct {
	// Lower and Upper bound the bucket: observations fell in [Lower, Upper).
	Lower time.Duration
	Upper time.Duration
	Count uint64
}

// Buckets returns the non-empty buckets in increasing order.
func (h *Histogram) Buckets() []Bucket {
	var out []Bucket
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		out = append(out, Bucket{
			Lower: time.Duration(bucketLower(i)) * time.Microsecond,
			Upper: time.Duration(bucketUpper(i)) * time.Microsecond,
			Count: c,
		})
	}
	return out
}

// String summarizes the histogram for logs and test failures.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.total, h.Mean(), h.Quantile(0.50), h.Quantile(0.99), h.max)
}

package stats

import (
	"math"
	"sort"
	"strconv"
	"time"
)

// Window aggregates the observations that fell into one fixed-width time
// window of a Series.
type Window struct {
	Count uint64
	Sum   float64
	Min   float64
	Max   float64
}

// Mean returns the window's mean observation, or zero when empty.
func (w Window) Mean() float64 {
	if w.Count == 0 {
		return 0
	}
	return w.Sum / float64(w.Count)
}

// Series is a time series bucketed into fixed-width windows, used for the
// paper's 50 ms-granularity plots (VLRT counts, queue lengths, CPU
// utilization). Windows are created on demand; missing windows read as
// empty. The zero value is unusable; construct with NewSeries.
type Series struct {
	width   time.Duration
	windows []Window
}

// NewSeries returns a series with the given window width. Width must be
// positive.
func NewSeries(width time.Duration) *Series {
	if width <= 0 {
		panic("stats: NewSeries requires a positive width")
	}
	return &Series{width: width}
}

// NewSeriesHorizon returns a series with window capacity preallocated
// for observations up to the given horizon, so a run of known duration
// never regrows the window slice on the recording hot path. A horizon
// of zero (or less) falls back to on-demand growth; observations past
// the horizon still grow the slice normally.
func NewSeriesHorizon(width time.Duration, horizon time.Duration) *Series {
	s := NewSeries(width)
	if horizon > 0 {
		s.windows = make([]Window, 0, int(horizon/width)+1)
	}
	return s
}

// index returns the window index for time t, growing the window slice.
func (s *Series) index(t time.Duration) int {
	if t < 0 {
		t = 0
	}
	i := int(t / s.width)
	if n := i + 1 - len(s.windows); n > 0 {
		s.windows = append(s.windows, make([]Window, n)...)
	}
	return i
}

// Width returns the window width.
func (s *Series) Width() time.Duration { return s.width }

// Add records observation v at time t.
func (s *Series) Add(t time.Duration, v float64) {
	w := &s.windows[s.index(t)]
	if w.Count == 0 || v < w.Min {
		w.Min = v
	}
	if w.Count == 0 || v > w.Max {
		w.Max = v
	}
	w.Count++
	w.Sum += v
}

// Incr records a unit event at time t (for event-count plots such as
// "VLRT requests per 50 ms window").
func (s *Series) Incr(t time.Duration) { s.Add(t, 1) }

// Len reports the number of windows that exist (up to the latest
// observation).
func (s *Series) Len() int { return len(s.windows) }

// At returns the window with index i; out-of-range indices read as empty.
func (s *Series) At(i int) Window {
	if i < 0 || i >= len(s.windows) {
		return Window{}
	}
	return s.windows[i]
}

// Start returns the start time of window i.
func (s *Series) Start(i int) time.Duration { return time.Duration(i) * s.width }

// Counts returns the per-window observation counts.
func (s *Series) Counts() []uint64 {
	out := make([]uint64, len(s.windows))
	for i, w := range s.windows {
		out[i] = w.Count
	}
	return out
}

// Means returns the per-window means (zero for empty windows).
func (s *Series) Means() []float64 {
	out := make([]float64, len(s.windows))
	for i, w := range s.windows {
		out[i] = w.Mean()
	}
	return out
}

// Maxes returns the per-window maxima (zero for empty windows).
func (s *Series) Maxes() []float64 {
	out := make([]float64, len(s.windows))
	for i, w := range s.windows {
		out[i] = w.Max
	}
	return out
}

// Merge folds another series of the same window width into this one,
// index-wise: counts and sums add, minima and maxima combine. Merging
// per-shard series after a run reproduces exactly the series a single
// shared recorder would have built, which is what lets recording shard
// without changing any downstream reader.
func (s *Series) Merge(other *Series) {
	if other == nil || len(other.windows) == 0 {
		return
	}
	if other.width != s.width {
		panic("stats: Series.Merge requires matching window widths")
	}
	if n := len(other.windows) - len(s.windows); n > 0 {
		s.windows = append(s.windows, make([]Window, n)...)
	}
	for i := range other.windows {
		ow := &other.windows[i]
		if ow.Count == 0 {
			continue
		}
		w := &s.windows[i]
		if w.Count == 0 || ow.Min < w.Min {
			w.Min = ow.Min
		}
		if w.Count == 0 || ow.Max > w.Max {
			w.Max = ow.Max
		}
		w.Count += ow.Count
		w.Sum += ow.Sum
	}
}

// PeakWindow returns the index and value of the window with the largest
// maximum. It returns (-1, 0) for an empty series.
func (s *Series) PeakWindow() (int, float64) {
	idx, peak := -1, 0.0
	for i, w := range s.windows {
		if w.Count > 0 && (idx == -1 || w.Max > peak) {
			idx, peak = i, w.Max
		}
	}
	return idx, peak
}

// Slice returns the window means between from (inclusive) and to
// (exclusive) times, for zooming into an interval of interest.
func (s *Series) Slice(from, to time.Duration) []float64 {
	if to < from {
		from, to = to, from
	}
	lo := int(from / s.width)
	hi := int((to + s.width - 1) / s.width)
	var out []float64
	for i := lo; i < hi; i++ {
		out = append(out, s.At(i).Mean())
	}
	return out
}

// Online accumulates count, mean and variance in one pass using
// Welford's algorithm. The zero value is ready for use.
type Online struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (o *Online) Add(v float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = v, v
	} else {
		if v < o.min {
			o.min = v
		}
		if v > o.max {
			o.max = v
		}
	}
	delta := v - o.mean
	o.mean += delta / float64(o.n)
	o.m2 += delta * (v - o.mean)
}

// N reports the number of observations.
func (o *Online) N() uint64 { return o.n }

// Mean reports the running mean (zero when empty).
func (o *Online) Mean() float64 { return o.mean }

// Min reports the smallest observation (zero when empty).
func (o *Online) Min() float64 { return o.min }

// Max reports the largest observation (zero when empty).
func (o *Online) Max() float64 { return o.max }

// Variance reports the population variance (zero for n < 2).
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n)
}

// StdDev reports the population standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Pearson returns the Pearson correlation coefficient of two equal-length
// series. It returns zero when the series are shorter than two points or
// either has zero variance.
func Pearson(x, y []float64) float64 {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	if n < 2 {
		return 0
	}
	var sx, sy Online
	for i := 0; i < n; i++ {
		sx.Add(x[i])
		sy.Add(y[i])
	}
	if sx.Variance() == 0 || sy.Variance() == 0 {
		return 0
	}
	var cov float64
	for i := 0; i < n; i++ {
		cov += (x[i] - sx.Mean()) * (y[i] - sy.Mean())
	}
	cov /= float64(n)
	return cov / (sx.StdDev() * sy.StdDev())
}

// ExactQuantile returns the q-quantile of the given sample by nearest-rank
// on a sorted copy. It is intended for small samples in tests and
// summaries.
func ExactQuantile(sample []float64, q float64) float64 {
	if len(sample) == 0 {
		return 0
	}
	sorted := make([]float64, len(sample))
	copy(sorted, sample)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(q * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// DurationToMillis converts a duration to fractional milliseconds, the
// unit the paper's response-time plots use.
func DurationToMillis(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

// Summary is a compact latency digest rendered by CLIs and reports.
type Summary struct {
	Count uint64
	Mean  time.Duration
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
	P999  time.Duration
	Max   time.Duration
}

// Summarize digests a histogram.
func Summarize(h *Histogram) Summary {
	return Summary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   h.Max(),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return "n=" + strconv.FormatUint(s.Count, 10) +
		" mean=" + s.Mean.String() +
		" p50=" + s.P50.String() +
		" p90=" + s.P90.String() +
		" p99=" + s.P99.String() +
		" p99.9=" + s.P999.String() +
		" max=" + s.Max.String()
}

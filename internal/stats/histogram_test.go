package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram not zeroed: %v", h.String())
	}
}

func TestHistogramSingleValue(t *testing.T) {
	var h Histogram
	h.Record(5 * time.Millisecond)
	if h.Count() != 1 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 5*time.Millisecond {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Min() != 5*time.Millisecond || h.Max() != 5*time.Millisecond {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramNegativeClampedToZero(t *testing.T) {
	var h Histogram
	h.Record(-time.Second)
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative record mishandled: min=%v max=%v n=%d", h.Min(), h.Max(), h.Count())
	}
}

func TestHistogramExactMean(t *testing.T) {
	var h Histogram
	durations := []time.Duration{time.Millisecond, 3 * time.Millisecond, 8 * time.Millisecond}
	for _, d := range durations {
		h.Record(d)
	}
	if h.Mean() != 4*time.Millisecond {
		t.Fatalf("Mean = %v, want 4ms", h.Mean())
	}
	if h.Sum() != 12*time.Millisecond {
		t.Fatalf("Sum = %v", h.Sum())
	}
}

func TestBucketBoundsContiguousAndMonotonic(t *testing.T) {
	for i := 0; i < numBuckets-1; i++ {
		if bucketUpper(i) != bucketLower(i+1) {
			t.Fatalf("bucket %d upper %d != bucket %d lower %d",
				i, bucketUpper(i), i+1, bucketLower(i+1))
		}
		if bucketLower(i) >= bucketUpper(i) {
			t.Fatalf("bucket %d empty range [%d,%d)", i, bucketLower(i), bucketUpper(i))
		}
	}
}

func TestBucketIndexRoundTrip(t *testing.T) {
	for _, us := range []uint64{0, 1, 17, 127, 128, 255, 256, 999, 1000, 1_000_000, 1 << 40} {
		i := bucketIndex(us)
		if us < bucketLower(i) || us >= bucketUpper(i) {
			t.Fatalf("value %d mapped to bucket %d [%d,%d)", us, i, bucketLower(i), bucketUpper(i))
		}
	}
}

// Property: any microsecond value lands in a bucket whose bounds contain
// it, and the relative width of that bucket is at most ~1.6%.
func TestQuickBucketAccuracy(t *testing.T) {
	f := func(us uint64) bool {
		us %= uint64(1) << 50
		i := bucketIndex(us)
		lo, hi := bucketLower(i), bucketUpper(i)
		if us < lo || us >= hi {
			return false
		}
		if lo >= 128 {
			rel := float64(hi-lo) / float64(lo)
			if rel > 0.016 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileAccuracy(t *testing.T) {
	var h Histogram
	// 1..1000 ms uniformly.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.5, 500 * time.Millisecond},
		{0.9, 900 * time.Millisecond},
		{0.99, 990 * time.Millisecond},
	} {
		got := h.Quantile(tc.q)
		err := math.Abs(float64(got-tc.want)) / float64(tc.want)
		if err > 0.02 {
			t.Fatalf("Quantile(%v) = %v, want ~%v", tc.q, got, tc.want)
		}
	}
}

func TestQuantileEdges(t *testing.T) {
	var h Histogram
	h.Record(time.Millisecond)
	h.Record(time.Second)
	if h.Quantile(0) != time.Millisecond {
		t.Fatalf("Quantile(0) = %v", h.Quantile(0))
	}
	if h.Quantile(1) != time.Second {
		t.Fatalf("Quantile(1) = %v", h.Quantile(1))
	}
}

// Property: quantiles are monotonically non-decreasing in q and bounded
// by min and max; total bucket counts equal Count().
func TestQuickQuantileMonotonic(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, v := range raw {
			h.Record(time.Duration(v) * time.Microsecond)
		}
		var bucketTotal uint64
		for _, b := range h.Buckets() {
			bucketTotal += b.Count
		}
		if bucketTotal != h.Count() {
			return false
		}
		prev := time.Duration(-1)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			v := h.Quantile(q)
			if v < prev || v < h.Min() || v > h.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCountAtOrAbove(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Record(5 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Record(2 * time.Second)
	}
	if got := h.CountAtOrAbove(time.Second); got != 10 {
		t.Fatalf("CountAtOrAbove(1s) = %d, want 10", got)
	}
	if got := h.CountBelow(10 * time.Millisecond); got != 90 {
		t.Fatalf("CountBelow(10ms) = %d, want 90", got)
	}
	if got := h.CountAtOrAbove(0); got != 100 {
		t.Fatalf("CountAtOrAbove(0) = %d, want 100", got)
	}
}

func TestMerge(t *testing.T) {
	var a, b Histogram
	a.Record(time.Millisecond)
	a.Record(2 * time.Millisecond)
	b.Record(10 * time.Second)
	a.Merge(&b)
	if a.Count() != 3 {
		t.Fatalf("Count = %d", a.Count())
	}
	if a.Max() != 10*time.Second {
		t.Fatalf("Max = %v", a.Max())
	}
	if a.Min() != time.Millisecond {
		t.Fatalf("Min = %v", a.Min())
	}
	if a.Sum() != 10*time.Second+3*time.Millisecond {
		t.Fatalf("Sum = %v", a.Sum())
	}
}

func TestMergeIntoEmpty(t *testing.T) {
	var a, b Histogram
	b.Record(7 * time.Millisecond)
	a.Merge(&b)
	if a.Min() != 7*time.Millisecond || a.Max() != 7*time.Millisecond {
		t.Fatalf("merge into empty: min=%v max=%v", a.Min(), a.Max())
	}
	a.Merge(nil) // must not panic
}

func TestBucketsOrdered(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{time.Second, time.Microsecond, 50 * time.Millisecond} {
		h.Record(d)
	}
	bs := h.Buckets()
	if len(bs) != 3 {
		t.Fatalf("Buckets len = %d, want 3", len(bs))
	}
	for i := 1; i < len(bs); i++ {
		if bs[i].Lower < bs[i-1].Upper {
			t.Fatalf("buckets out of order: %+v", bs)
		}
	}
}

func TestRecordRoundsSubMicrosecondUp(t *testing.T) {
	var h Histogram
	h.Record(500 * time.Nanosecond)
	bs := h.Buckets()
	if len(bs) != 1 || bs[0].Lower != time.Microsecond {
		t.Fatalf("sub-microsecond value bucketed as %+v", bs)
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	h.Record(time.Millisecond)
	if s := h.String(); s == "" {
		t.Fatal("String returned empty")
	}
}

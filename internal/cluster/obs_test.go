package cluster

import (
	"reflect"
	"testing"
	"time"

	"millibalance/internal/mbneck"
	"millibalance/internal/obs"
	"millibalance/internal/trace"
)

// TestObservabilityDisabledByDefault: zero capacities must leave every
// observability surface nil and requests untouched.
func TestObservabilityDisabledByDefault(t *testing.T) {
	cfg := QuietMiniConfig()
	cfg.Duration = 2 * time.Second
	cfg.TraceCapacity = 1 << 16
	res := Run(cfg)
	if res.Spans != nil || res.Events != nil || res.Online != nil {
		t.Fatalf("observability enabled without capacities: %v %v %v", res.Spans, res.Events, res.Online)
	}
	if res.Responses.Total() == 0 {
		t.Fatal("no requests completed")
	}
	for _, e := range res.Trace.Entries() {
		if e.Stages != nil {
			t.Fatalf("entry %d carries stages with tracing disabled", e.RequestID)
		}
	}
}

// TestObservabilityEnabledRun exercises the full wiring on a mini
// topology with millibottlenecks armed: spans decompose response times,
// decision events carry full candidate tables, and the streaming
// detectors agree exactly with the offline analysis over the same run.
func TestObservabilityEnabledRun(t *testing.T) {
	cfg := MiniConfig()
	cfg.TraceCapacity = 1 << 20
	cfg.SpanCapacity = 1 << 20
	cfg.EventCapacity = 1 << 20
	res := Run(cfg)

	// --- Spans ---
	if res.Spans == nil || res.Spans.Len() == 0 {
		t.Fatal("no spans recorded")
	}
	if res.Spans.Finished() != res.Responses.Total() {
		t.Fatalf("finished spans %d != completed requests %d", res.Spans.Finished(), res.Responses.Total())
	}
	spans := res.Spans.Spans()
	for _, sp := range spans {
		rt := sp.ResponseTime()
		if rt <= 0 {
			t.Fatalf("span %d: non-positive response time %v", sp.RequestID, rt)
		}
		// In virtual time the timeline stages partition the lifecycle,
		// so per-request coverage is essentially exact.
		if cov := sp.Breakdown().Coverage(rt); cov < 0.99 || cov > 1.01 {
			t.Fatalf("span %d: coverage %.4f (rt=%v breakdown=%+v)", sp.RequestID, cov, rt, sp.Breakdown())
		}
	}

	// Trace entries mirror the spans' breakdowns.
	withStages := 0
	for _, e := range res.Trace.Entries() {
		if e.Stages != nil {
			withStages++
		}
	}
	if withStages != res.Trace.Len() {
		t.Fatalf("only %d/%d trace entries carry stages", withStages, res.Trace.Len())
	}
	dec := trace.Decompose(res.Trace.Entries())
	if dec.Count != res.Trace.Len() || dec.MinCoverage < 0.99 {
		t.Fatalf("decomposition count=%d minCoverage=%.4f", dec.Count, dec.MinCoverage)
	}

	// --- Decision events ---
	if res.Events == nil {
		t.Fatal("no event log")
	}
	decisions := res.Events.Kind(obs.KindDecision)
	if len(decisions) == 0 {
		t.Fatal("no decision events")
	}
	for _, ev := range decisions[:min(len(decisions), 100)] {
		if ev.Chosen == "" || ev.Source == "" {
			t.Fatalf("decision missing identity: %+v", ev)
		}
		if len(ev.Candidates) != cfg.NumApp {
			t.Fatalf("decision has %d candidate views, want %d", len(ev.Candidates), cfg.NumApp)
		}
		found := false
		for _, cv := range ev.Candidates {
			if cv.Name == ev.Chosen {
				found = true
			}
			if cv.State == "" {
				t.Fatalf("candidate view without state: %+v", cv)
			}
		}
		if !found {
			t.Fatalf("chosen %q absent from candidate table %+v", ev.Chosen, ev.Candidates)
		}
	}
	// MiniConfig arms app-tier writeback, so the 3-state machine must
	// fire at least one transition during the stalls.
	if len(res.Events.Kind(obs.KindState)) == 0 {
		t.Fatal("no state-transition events despite armed millibottlenecks")
	}

	// --- Online/offline detector parity over the identical run ---
	servers := append(append([]*ServerStats{}, res.Webs...), res.Apps...)
	servers = append(servers, res.DB)
	sawSpan := false
	for _, st := range servers {
		offline := mbneck.FilterMillibottlenecks(
			mbneck.DetectSaturations(st.CPU.Series(), 95),
			50*time.Millisecond, 2*time.Second)
		online := res.Online[st.Name]
		if len(offline) != len(online) || (len(offline) > 0 && !reflect.DeepEqual(online, offline)) {
			t.Fatalf("%s: online %v != offline %v", st.Name, online, offline)
		}
		if len(online) > 0 {
			sawSpan = true
		}
	}
	if !sawSpan {
		t.Fatal("no server saturated — millibottleneck run produced nothing to detect")
	}
	// Each confirmed span must have produced a detection event.
	if got := len(res.Events.Kind(obs.KindMillibottleneck)); got == 0 {
		t.Fatal("no millibottleneck events")
	}
}

package cluster

import (
	"strings"
	"testing"
	"time"

	"millibalance/internal/telemetry"
)

// telemetryMini is MiniConfig with the timeline sampler and event log
// armed.
func telemetryMini() Config {
	cfg := MiniConfig()
	cfg.Duration = 6 * time.Second
	cfg.EventCapacity = 1 << 14
	cfg.Telemetry = &telemetry.Config{}
	return cfg
}

func TestTelemetryTimelineRecorded(t *testing.T) {
	res := Run(telemetryMini())
	if res.Timeline == nil {
		t.Fatal("Results.Timeline is nil with Telemetry armed")
	}
	if got := res.Timeline.Interval(); got != 50*time.Millisecond {
		t.Fatalf("default interval = %v, want 50ms", got)
	}
	// Every server contributes queue/busy/frozen tracks with one point
	// per interval.
	wantPoints := int(res.Config.Duration/res.Timeline.Interval()) - 1
	for _, source := range []string{"apache1", "apache2", "tomcat1", "tomcat2", "mysql1"} {
		for _, signal := range []string{telemetry.SignalQueueDepth, telemetry.SignalBusyFrac, telemetry.SignalFrozen} {
			tr := res.Timeline.Lookup(source, signal)
			if tr == nil {
				t.Fatalf("no track for %s/%s", source, signal)
			}
			if tr.Len() < wantPoints {
				t.Fatalf("%s/%s has %d points, want >= %d", source, signal, tr.Len(), wantPoints)
			}
		}
	}
	// The app tier's writeback is armed, so its frozen flag must have
	// fired at least once during the run.
	var buf []telemetry.Point
	frozenSeen := false
	for _, app := range []string{"tomcat1", "tomcat2"} {
		buf = res.Timeline.Lookup(app, telemetry.SignalFrozen).Snapshot(buf[:0])
		for _, p := range buf {
			if p.V == 1 {
				frozenSeen = true
			}
		}
	}
	if !frozenSeen {
		t.Fatal("no frozen samples despite armed writeback")
	}
	// Detector confirmations produced online causal chains.
	if len(res.Chains) == 0 {
		t.Fatal("no online causal chains despite detections")
	}
	for _, ch := range res.Chains {
		if len(ch.Links) == 0 {
			t.Fatalf("chain for cluster %+v has no links", ch.Cluster)
		}
	}
}

func TestTelemetryDeterminism(t *testing.T) {
	// Arming telemetry must not perturb the simulated system: client
	// outcomes are identical with and without the sampler.
	cfg := telemetryMini()
	withTel := Run(cfg)
	cfg2 := cfg
	cfg2.Telemetry = nil
	without := Run(cfg2)
	if a, b := withTel.Responses.Total(), without.Responses.Total(); a != b {
		t.Fatalf("telemetry changed outcomes: %d vs %d requests", a, b)
	}
	if a, b := withTel.Responses.VLRTCount(), without.Responses.VLRTCount(); a != b {
		t.Fatalf("telemetry changed VLRT counts: %d vs %d", a, b)
	}

	// And two armed runs replay byte-identically, JSONL export included.
	again := Run(cfg)
	var b1, b2 strings.Builder
	if err := withTel.Timeline.WriteJSONL(&b1); err != nil {
		t.Fatal(err)
	}
	if err := again.Timeline.WriteJSONL(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("timeline JSONL differs between identical runs")
	}
	if b1.Len() == 0 {
		t.Fatal("timeline JSONL is empty")
	}
}

// Package cluster assembles the paper's n-tier topology — client groups,
// web servers with mod_jk-style balancers, application servers whose log
// writeback produces millibottlenecks, and a database server — runs
// experiments over it, and collects the full measurement set every
// figure and table of the paper is rendered from.
package cluster

import (
	"fmt"
	"strings"
	"time"

	"millibalance/internal/adapt"
	"millibalance/internal/admission"
	"millibalance/internal/lb"
	"millibalance/internal/netmodel"
	"millibalance/internal/probe"
	"millibalance/internal/resource"
	"millibalance/internal/sim"
	"millibalance/internal/telemetry"
	"millibalance/internal/workload"
)

// Config describes one full experiment.
type Config struct {
	// Seed1/Seed2 seed the deterministic random source.
	Seed1, Seed2 uint64
	// Duration is the measured run length in virtual time.
	Duration sim.Time
	// Clients is the total closed-loop client count, split evenly
	// across web servers in contiguous blocks (the paper assigns two
	// client nodes per web server).
	Clients int
	// ThinkTime is the mean client think time (RUBBoS ≈ 7 s).
	ThinkTime sim.Time
	// BrowseOnly selects the browse-only mix; otherwise read/write.
	BrowseOnly bool
	// Burst optionally modulates client think times.
	Burst *workload.BurstConfig
	// OpenLoopRate, when positive, replaces the closed-loop client
	// population with a Poisson arrival process at this rate (req/s).
	// Clients then only sizes the virtual ClientID space used to route
	// requests to web servers. Open-loop arrivals do not self-throttle
	// during millibottlenecks, making the instability strictly harsher.
	OpenLoopRate float64

	// NumWeb and NumApp size the web and application tiers (the paper
	// uses 4 and 4, with one database server).
	NumWeb, NumApp int

	// Policy and Mechanism name the balancer behaviour (see
	// lb.PolicyNames and lb.MechanismNames).
	Policy    string
	Mechanism string
	// LB tunes the 3-state machine.
	LB lb.Config

	// Web tier sizing.
	WebCores, WebWorkers, WebBacklog, ConnPoolSize int
	// WebLogBytes is the web server's own per-request log volume.
	WebLogBytes int64
	// WebWriteback configures the web tier's writeback daemons; the LB
	// experiments disable it as the paper does.
	WebWriteback resource.WritebackConfig

	// App tier sizing.
	AppCores, AppWorkers, DBConns int
	// AppWriteback configures the app tier's writeback daemons — the
	// millibottleneck source.
	AppWriteback resource.WritebackConfig

	// DB tier sizing.
	DBCores, DBWorkers int

	// LinkLatency is the one-way inter-tier latency.
	LinkLatency sim.Time
	// Retransmit is the drop-retry schedule (nil → 1 s × 3).
	Retransmit netmodel.RetransmitSchedule
	// SampleInterval is the metrics polling period (default 10 ms).
	SampleInterval sim.Time
	// TraceCapacity, when positive, records up to that many access-log
	// entries (one per completed request) into Results.Trace for the
	// paper's log-based analyses.
	TraceCapacity int
	// SpanCapacity, when positive, enables request-lifecycle span
	// tracing: every request carries a typed stage timeline and the most
	// recent SpanCapacity completed spans are kept in Results.Spans.
	// Zero disables tracing entirely (requests carry a nil span).
	SpanCapacity int
	// EventCapacity, when positive, enables the observability event log
	// (balancer decisions with per-candidate lb_values, state
	// transitions, rejects) and the per-server online millibottleneck
	// detectors; the most recent EventCapacity events are kept in
	// Results.Events. Zero disables both.
	EventCapacity int
	// Telemetry, when non-nil, arms the fine-grained resource-timeline
	// sampler (internal/telemetry): every server's queue depth, busy
	// fraction, frozen flag and dirty bytes are sampled off the sim
	// clock at Telemetry.Interval (default 50 ms) into preallocated
	// rings, exposed in Results.Timeline. When the event log is also
	// enabled, an online correlator turns detector confirmations into
	// ranked causal chains in Results.Chains. Sampling runs on the
	// engine thread at deterministic instants, so armed runs replay
	// byte-identically.
	Telemetry *telemetry.Config
	// Probe, when non-nil, tunes the asynchronous probing subsystem
	// (internal/probe). Probing also arms implicitly — with defaults —
	// whenever prequal appears as the static Policy or among the
	// adaptive ladder's swap targets; runs that can never dispatch
	// through prequal skip the subsystem, keeping their event sequences
	// unchanged.
	Probe *probe.Config
	// Adaptive, when non-nil, arms the millibottleneck-aware adaptive
	// control plane (internal/adapt): the controller subscribes to the
	// event log, quarantines detected-stalled app servers and hot-swaps
	// policy/mechanism on every web server's balancer at runtime. The
	// controller needs the online detectors, so a zero EventCapacity is
	// raised to a default. Decisions land in Results.Adapt.
	Adaptive *adapt.Config
	// Admission, when non-nil, arms the overload-control subsystem
	// (internal/admission) on every web server: an adaptive concurrency
	// limiter, a CoDel-judged bounded wait in front of the worker pool,
	// and priority-aware shedding. All gate activity runs on the engine
	// clock, so an armed run still replays byte-identically. Gate
	// snapshots land in Results.Admission; sheds appear as
	// admission_drop events when the event log is armed.
	Admission *admission.Config
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Duration <= 0:
		return fmt.Errorf("cluster: non-positive duration %v", c.Duration)
	case c.Clients <= 0:
		return fmt.Errorf("cluster: non-positive client count %d", c.Clients)
	case c.NumWeb <= 0 || c.NumApp <= 0:
		return fmt.Errorf("cluster: need at least one web and one app server (%d/%d)", c.NumWeb, c.NumApp)
	case c.ThinkTime <= 0:
		return fmt.Errorf("cluster: non-positive think time %v", c.ThinkTime)
	}
	if _, ok := lb.PolicyByName(c.Policy); !ok {
		return fmt.Errorf("cluster: unknown policy %q (have %s)", c.Policy, strings.Join(lb.PolicyNames(), ", "))
	}
	if _, ok := lb.MechanismByName(c.Mechanism, nil); !ok {
		return fmt.Errorf("cluster: unknown mechanism %q", c.Mechanism)
	}
	if c.Adaptive != nil {
		ac := *c.Adaptive
		for _, p := range []string{ac.PolicyTarget, ac.FallbackPolicy} {
			if p == "" {
				continue
			}
			if _, ok := lb.PolicyByName(p); !ok {
				return fmt.Errorf("cluster: unknown adaptive policy %q (have %s)", p, strings.Join(lb.PolicyNames(), ", "))
			}
		}
		if ac.MechanismTarget != "" {
			if _, ok := lb.MechanismByName(ac.MechanismTarget, nil); !ok {
				return fmt.Errorf("cluster: unknown adaptive mechanism %q", ac.MechanismTarget)
			}
		}
	}
	if err := c.Admission.Validate(); err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	return nil
}

// Mix returns the configured interaction mix.
func (c Config) Mix() workload.Mix {
	if c.BrowseOnly {
		return workload.BrowseOnlyMix()
	}
	return workload.ReadWriteMix()
}

// PaperConfig is the paper's testbed at full scale: 4 web servers
// (Apache, MaxClients 200, mod_jk pool 25), 4 application servers
// (Tomcat, maxThreads 210, 48 DB connections), 1 database server, and
// 70 000 closed-loop clients running the RUBBoS read/write mix. The
// application tier's dirty-page writeback is armed (5 s flush interval),
// so millibottlenecks occur; the web tier's is disabled, as the paper
// does for its load-balancer experiments.
func PaperConfig() Config {
	return Config{
		Seed1:    2017,
		Seed2:    1204,
		Duration: 180 * time.Second,
		Clients:  70000,
		// RUBBoS default think time ≈7 s yields the paper's ~10 k req/s.
		ThinkTime:  7 * time.Second,
		BrowseOnly: false,

		NumWeb:    4,
		NumApp:    4,
		Policy:    "total_request",
		Mechanism: "original_get_endpoint",

		WebCores:     8,
		WebWorkers:   200, // Apache MaxClients
		WebBacklog:   256, // listen backlog
		ConnPoolSize: 25,  // mod_jk connection_pool_size
		WebLogBytes:  400,
		WebWriteback: resource.DisabledWritebackConfig(),

		AppCores:   8,
		AppWorkers: 210, // Tomcat maxThreads
		DBConns:    48,  // DB connections total
		AppWriteback: resource.WritebackConfig{
			// Kernel flusher wakeup in the paper's environment; each
			// flush writes a few seconds of accumulated Tomcat logs and
			// stalls the server for 100–300 ms.
			Interval: 5 * time.Second,
			Disk:     resource.Disk{WriteRate: 44 << 20},
			MaxStall: 1200 * time.Millisecond,
			// Occasional degraded flush (seek storm): the heavy tail of
			// real flush durations, and the source of the small VLRT
			// residue the remedies cannot remove (Table I).
			SlowFlushProb:   0.10,
			SlowFlushFactor: 6,
		},

		DBCores:   8,
		DBWorkers: 64,

		LinkLatency:    100 * time.Microsecond,
		SampleInterval: 10 * time.Millisecond,
	}
}

// BaselineConfig is PaperConfig with every writeback disabled — the
// paper's millibottleneck-free environment of Section II-B (larger
// dirty-page allowance, 600 s flush interval).
func BaselineConfig() Config {
	cfg := PaperConfig()
	cfg.AppWriteback = resource.DisabledWritebackConfig()
	return cfg
}

// SingleChainConfig is the Section III-B topology: one web, one app and
// one database server, with millibottlenecks armed on both the web and
// app servers (the paper's Fig. 2 shows an Apache-side flush and a
// Tomcat-side push-back wave).
func SingleChainConfig() Config {
	cfg := PaperConfig()
	cfg.NumWeb = 1
	cfg.NumApp = 1
	cfg.Clients = 17500 // same per-server load as the 4×4 topology
	cfg.WebWriteback = resource.WritebackConfig{
		Interval: 7 * time.Second,
		Disk:     resource.Disk{WriteRate: 24 << 20},
		MaxStall: 400 * time.Millisecond,
	}
	return cfg
}

// Scale returns a copy of the config with client count and duration
// scaled by the given factors, for CI-speed runs. Server sizing is
// unchanged: utilization scales with the client factor, so factors well
// below one also weaken the phenomena — prefer scaling duration only.
func (c Config) Scale(clientFactor, durationFactor float64) Config {
	out := c
	if clientFactor > 0 {
		out.Clients = int(float64(c.Clients) * clientFactor)
		if out.Clients < 1 {
			out.Clients = 1
		}
	}
	if durationFactor > 0 {
		out.Duration = sim.Time(float64(c.Duration) * durationFactor)
	}
	return out
}

// MiniConfig is a proportionally shrunk topology for tests: 2 web and
// 2 app servers with small cores/pools, a faster flush cycle and a
// slower disk so millibottlenecks of realistic relative size appear
// within seconds of virtual time.
func MiniConfig() Config {
	return Config{
		Seed1:      7,
		Seed2:      13,
		Duration:   10 * time.Second,
		Clients:    3000,
		ThinkTime:  3 * time.Second,
		BrowseOnly: false,

		NumWeb:    2,
		NumApp:    2,
		Policy:    "total_request",
		Mechanism: "original_get_endpoint",

		WebCores:     4,
		WebWorkers:   100,
		WebBacklog:   48,
		ConnPoolSize: 10,
		WebLogBytes:  0,
		WebWriteback: resource.DisabledWritebackConfig(),

		AppCores:   4,
		AppWorkers: 100,
		DBConns:    24,
		AppWriteback: resource.WritebackConfig{
			Interval: 2 * time.Second,
			Disk:     resource.Disk{WriteRate: 2500 << 10},
			MaxStall: 400 * time.Millisecond,
		},

		DBCores:   4,
		DBWorkers: 32,

		LinkLatency:    100 * time.Microsecond,
		SampleInterval: 10 * time.Millisecond,
	}
}

// QuietMiniConfig is MiniConfig without millibottlenecks.
func QuietMiniConfig() Config {
	cfg := MiniConfig()
	cfg.AppWriteback = resource.DisabledWritebackConfig()
	return cfg
}

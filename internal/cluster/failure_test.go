package cluster

import (
	"testing"
	"time"

	"millibalance/internal/lb"
	"millibalance/internal/workload"
)

// TestPermanentFailureEscalatesToError injects an effectively permanent
// stall on one app server and verifies the 3-state machine's Error path:
// the failures persist past the millibottleneck horizon, the balancer
// excludes the server, and the system keeps serving from the healthy
// one.
func TestPermanentFailureEscalatesToError(t *testing.T) {
	cfg := QuietMiniConfig()
	cfg.Mechanism = "modified_get_endpoint" // fail fast, no 300ms polls
	c := New(cfg)
	// Freeze tomcat1 for the whole run from t=2s.
	c.Eng.Schedule(2*time.Second, func() { c.Apps[0].CPU().Stall(time.Hour) })
	res := c.Run()

	for i, w := range c.Webs {
		var errored bool
		for _, snap := range w.Balancer().Snapshot() {
			if snap.Name == "tomcat1" && snap.State == lb.StateError {
				errored = true
			}
		}
		if !errored {
			t.Fatalf("web %d never escalated the dead server to Error", i)
		}
	}
	// The healthy server carries the load after the failure.
	if res.Apps[1].Served < 3*res.Apps[0].Served/2 {
		t.Fatalf("healthy server served %d vs dead server %d — no failover",
			res.Apps[1].Served, res.Apps[0].Served)
	}
	// Most requests still succeed (those routed to tomcat1 before
	// exclusion are lost or delayed, the rest flow).
	ok := res.Responses.Total() - res.Responses.Failures()
	if float64(ok) < 0.7*float64(res.Responses.Total()) {
		t.Fatalf("only %d/%d requests succeeded after permanent failure",
			ok, res.Responses.Total())
	}
}

// TestMillibottleneckDoesNotEscalateToError is the counterpart: a
// normal-length millibottleneck must never push a server into Error —
// the conservative Busy treatment is the point of the remedy.
func TestMillibottleneckDoesNotEscalateToError(t *testing.T) {
	cfg := QuietMiniConfig()
	cfg.Mechanism = "modified_get_endpoint"
	c := New(cfg)
	sawError := false
	// Inject a 300ms stall and watch states densely around it.
	c.Eng.Schedule(3*time.Second, func() { c.Apps[0].CPU().Stall(300 * time.Millisecond) })
	for ms := 3000; ms < 4500; ms += 20 {
		ms := ms
		c.Eng.At(time.Duration(ms)*time.Millisecond, func() {
			for _, w := range c.Webs {
				for _, snap := range w.Balancer().Snapshot() {
					if snap.State == lb.StateError {
						sawError = true
					}
				}
			}
		})
	}
	c.Run()
	if sawError {
		t.Fatal("a 300ms millibottleneck escalated a server to Error")
	}
}

// TestBurstyWorkloadCausesInstability reproduces the paper's other
// millibottleneck cause: bursty workloads. With writeback disabled, the
// only disturbance is a think-time burst that transiently saturates the
// app tier; under the original policy/mechanism this still produces
// drops and VLRT requests.
func TestBurstyWorkloadCausesInstability(t *testing.T) {
	cfg := QuietMiniConfig()
	cfg.Burst = &workload.BurstConfig{
		Period:    2 * time.Second,
		DutyCycle: 0.15,
		Factor:    8,
	}
	res := Run(cfg)
	if res.Responses.VLRTCount() == 0 && res.Drops == 0 {
		t.Fatal("bursty workload produced neither drops nor VLRT requests")
	}
	// The same bursts under current_load should hurt much less: the
	// saturation is tier-wide, so current_load cannot dodge it, but it
	// avoids the additional pile-up on whichever server lags.
	remedied := cfg
	remedied.Policy = "current_load"
	remRes := Run(remedied)
	if remRes.Responses.Mean() > res.Responses.Mean() {
		t.Fatalf("current_load mean %v worse than original %v under bursts",
			remRes.Responses.Mean(), res.Responses.Mean())
	}
}

// TestRecentRequestPolicyDoesNotFixInstability checks the ablation
// finding for the decayed-counter interpretation of the paper's closing
// suggestion ("consider recent utilization changes"): decay alone does
// NOT remove the instability — the stalled candidate's frozen counter
// still ranks lowest for the whole stall — which supports the paper's
// conclusion that current-*state* policies are the actual fix.
func TestRecentRequestPolicyDoesNotFixInstability(t *testing.T) {
	recent := MiniConfig()
	recent.Policy = "recent_request"
	recent.LB = lb.Config{MaintainInterval: 200 * time.Millisecond}
	recentRes := Run(recent)

	current := MiniConfig()
	current.Policy = "current_load"
	currentRes := Run(current)

	if recentRes.Responses.VLRTCount() == 0 {
		t.Fatal("recent_request shows no VLRT — decay alone should not fix the instability")
	}
	if recentRes.Responses.Mean() < 2*currentRes.Responses.Mean() {
		t.Fatalf("recent_request mean %v unexpectedly close to current_load %v",
			recentRes.Responses.Mean(), currentRes.Responses.Mean())
	}
}

// TestTwoChoicesPolicyEndToEnd runs the power-of-two-choices extension
// through the full cluster: it should behave comparably to current_load
// (both rank by in-flight state).
func TestTwoChoicesPolicyEndToEnd(t *testing.T) {
	cfg := MiniConfig()
	cfg.Policy = "two_choices"
	res := Run(cfg)
	if res.Responses.VLRTPercent() > 1 {
		t.Fatalf("two_choices VLRT %v%% — in-flight ranking should avoid the pile-up",
			res.Responses.VLRTPercent())
	}
	if res.Responses.Mean() > 20*time.Millisecond {
		t.Fatalf("two_choices mean %v", res.Responses.Mean())
	}
}

// TestRandomPolicyEndToEnd runs the no-information baseline: it spreads
// load but cannot avoid a stalled server, landing between the original
// and the in-flight-aware policies.
func TestRandomPolicyEndToEnd(t *testing.T) {
	cfg := MiniConfig()
	cfg.Policy = "random"
	res := Run(cfg)
	if res.Responses.Total() < 5000 {
		t.Fatalf("random policy served only %d", res.Responses.Total())
	}
	// Both apps used.
	if res.Apps[0].Served == 0 || res.Apps[1].Served == 0 {
		t.Fatal("random policy starved a server")
	}
}

// TestStickySessionsEndToEnd runs session affinity through the full
// cluster: bindings accumulate, every client's requests land on one
// backend, and the overall distribution still spreads.
func TestStickySessionsEndToEnd(t *testing.T) {
	cfg := QuietMiniConfig()
	cfg.LB = lb.Config{StickySessions: true}
	cfg.TraceCapacity = 100000
	res := Run(cfg)
	if res.Responses.Total() < 5000 {
		t.Fatalf("served %d", res.Responses.Total())
	}
	// Per-client affinity: every client's entries name one backend.
	perClient := map[int]map[string]bool{}
	for _, e := range res.Trace.Entries() {
		if e.Backend == "" {
			continue
		}
		m, ok := perClient[e.ClientID]
		if !ok {
			m = map[string]bool{}
			perClient[e.ClientID] = m
		}
		m[e.Backend] = true
	}
	multi := 0
	for _, backends := range perClient {
		if len(backends) > 1 {
			multi++
		}
	}
	// A healthy quiet run should keep (almost) every session pinned;
	// allow a tiny fraction of rebinds from transient pool exhaustion.
	if float64(multi) > 0.02*float64(len(perClient)) {
		t.Fatalf("%d of %d sessions touched multiple backends", multi, len(perClient))
	}
	// Both backends still carry load (sessions spread at first touch).
	if res.Apps[0].Served == 0 || res.Apps[1].Served == 0 {
		t.Fatal("sticky sessions starved a backend")
	}
}

// TestWeightedBackendsEndToEnd gives one app server double weight and
// verifies the dispatch ratio through the full cluster.
func TestWeightedBackendsEndToEnd(t *testing.T) {
	cfg := QuietMiniConfig()
	c := New(cfg)
	for _, w := range c.Webs {
		for _, cand := range w.Balancer().Candidates() {
			if cand.Name() == "tomcat1" {
				cand.SetWeight(2)
			}
		}
	}
	res := c.Run()
	ratio := float64(res.Apps[0].Served) / float64(res.Apps[1].Served)
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("weighted serve ratio %.2f (%d/%d), want ~2",
			ratio, res.Apps[0].Served, res.Apps[1].Served)
	}
}

// TestOpenLoopArrivals switches the workload to a Poisson arrival
// process and verifies the throughput matches the configured rate under
// healthy conditions.
func TestOpenLoopArrivals(t *testing.T) {
	cfg := QuietMiniConfig()
	cfg.OpenLoopRate = 800
	res := Run(cfg)
	want := cfg.OpenLoopRate * cfg.Duration.Seconds()
	got := float64(res.Issued)
	if got < 0.9*want || got > 1.1*want {
		t.Fatalf("issued %v, want ~%v", got, want)
	}
	if res.Responses.Mean() > 10*time.Millisecond {
		t.Fatalf("open-loop baseline mean %v", res.Responses.Mean())
	}
}

// TestOpenLoopHarsherThanClosedLoop verifies the workload-model claim:
// with millibottlenecks present, the open-loop process (which keeps
// pushing while the system is wedged) produces at least as bad a tail
// as the self-throttling closed loop at the same average rate.
func TestOpenLoopHarsherThanClosedLoop(t *testing.T) {
	closed := Run(MiniConfig())
	closedRate := float64(closed.Issued) / closed.Config.Duration.Seconds()

	open := MiniConfig()
	open.OpenLoopRate = closedRate
	openRes := Run(open)

	if openRes.Responses.VLRTCount() == 0 {
		t.Fatal("open-loop run shows no VLRT despite millibottlenecks")
	}
	if float64(openRes.Drops) < 0.8*float64(closed.Drops) {
		t.Fatalf("open-loop drops %d far below closed-loop %d — not harsher",
			openRes.Drops, closed.Drops)
	}
}

package cluster

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"millibalance/internal/trace"
)

func TestAccessLogRecordsRequests(t *testing.T) {
	cfg := QuietMiniConfig()
	cfg.TraceCapacity = 100000
	res := Run(cfg)
	if res.Trace == nil {
		t.Fatal("trace log missing")
	}
	if uint64(res.Trace.Len()) != res.Responses.Total() {
		t.Fatalf("log has %d entries for %d responses", res.Trace.Len(), res.Responses.Total())
	}
	entries := res.Trace.Entries()
	for _, e := range entries[:10] {
		if e.Web == "" || e.Backend == "" || e.Interaction == "" {
			t.Fatalf("incomplete entry %+v", e)
		}
		if !e.OK || e.ResponseTime <= 0 {
			t.Fatalf("unhealthy baseline entry %+v", e)
		}
	}
	// Section II-B's validation: every web server spreads its load
	// evenly across the backends.
	for web, spread := range trace.SpreadByWeb(entries) {
		if spread > 0.1 {
			t.Fatalf("%s spread %.2f — uneven distribution in the log", web, spread)
		}
	}
	// And the log exports cleanly.
	var buf bytes.Buffer
	if err := res.Trace.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "apache1") {
		t.Fatal("CSV missing server names")
	}
}

func TestAccessLogShowsVLRTAreRetransmissions(t *testing.T) {
	// The paper's mechanism for VLRT requests: the connection is
	// dropped at the overflowing accept queue and retransmitted after
	// 1 s, then served normally. The access log shows exactly that —
	// VLRT entries completed on a backend, carrying at least one
	// retransmission.
	cfg := MiniConfig()
	cfg.TraceCapacity = 200000
	res := Run(cfg)
	if res.Responses.VLRTCount() == 0 {
		t.Skip("no VLRT this run")
	}
	withRetx, total := 0, 0
	for _, e := range res.Trace.Entries() {
		if e.ResponseTime < time.Second {
			continue
		}
		total++
		if e.Retransmits >= 1 {
			withRetx++
		}
	}
	if total == 0 {
		t.Fatal("log lost the VLRT entries")
	}
	if frac := float64(withRetx) / float64(total); frac < 0.95 {
		t.Fatalf("only %.0f%% of VLRT entries carry retransmissions", frac*100)
	}
	// And the served VLRT requests name their backend — they were
	// eventually served, not abandoned.
	vlrt := trace.VLRTBackends(res.Trace.Entries(), time.Second)
	served := 0
	for backend, n := range vlrt {
		if backend != "(dropped)" {
			served += n
		}
	}
	if served == 0 {
		t.Fatalf("no VLRT entry was ever served: %v", vlrt)
	}
}

func TestAccessLogDisabledByDefault(t *testing.T) {
	res := Run(QuietMiniConfig())
	if res.Trace != nil {
		t.Fatal("trace log allocated without TraceCapacity")
	}
}

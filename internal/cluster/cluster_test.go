package cluster

import (
	"testing"
	"time"

	"millibalance/internal/mbneck"
	"millibalance/internal/metrics"
)

func TestConfigValidate(t *testing.T) {
	good := MiniConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("MiniConfig invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero duration", func(c *Config) { c.Duration = 0 }},
		{"zero clients", func(c *Config) { c.Clients = 0 }},
		{"no web servers", func(c *Config) { c.NumWeb = 0 }},
		{"no app servers", func(c *Config) { c.NumApp = 0 }},
		{"zero think", func(c *Config) { c.ThinkTime = 0 }},
		{"bad policy", func(c *Config) { c.Policy = "nope" }},
		{"bad mechanism", func(c *Config) { c.Mechanism = "nope" }},
	}
	for _, tc := range cases {
		cfg := MiniConfig()
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("%s: Validate accepted invalid config", tc.name)
		}
	}
}

func TestPaperConfigMatchesPaperTableIII(t *testing.T) {
	cfg := PaperConfig()
	if cfg.NumWeb != 4 || cfg.NumApp != 4 {
		t.Fatalf("topology %d/%d, want 4/4", cfg.NumWeb, cfg.NumApp)
	}
	if cfg.Clients != 70000 {
		t.Fatalf("clients = %d, want 70000", cfg.Clients)
	}
	if cfg.WebWorkers != 200 {
		t.Fatalf("web workers = %d, want Apache MaxClients 200", cfg.WebWorkers)
	}
	if cfg.ConnPoolSize != 25 {
		t.Fatalf("conn pool = %d, want mod_jk 25", cfg.ConnPoolSize)
	}
	if cfg.AppWorkers != 210 {
		t.Fatalf("app workers = %d, want Tomcat maxThreads 210", cfg.AppWorkers)
	}
	if cfg.DBConns != 48 {
		t.Fatalf("db conns = %d, want 48", cfg.DBConns)
	}
}

func TestScale(t *testing.T) {
	cfg := PaperConfig().Scale(0.1, 0.5)
	if cfg.Clients != 7000 {
		t.Fatalf("Clients = %d", cfg.Clients)
	}
	if cfg.Duration != 90*time.Second {
		t.Fatalf("Duration = %v", cfg.Duration)
	}
	same := PaperConfig().Scale(0, 0)
	if same.Clients != 70000 || same.Duration != 180*time.Second {
		t.Fatalf("zero factors changed config: %d/%v", same.Clients, same.Duration)
	}
	tiny := PaperConfig().Scale(0.0000001, 1)
	if tiny.Clients != 1 {
		t.Fatalf("Clients floor = %d", tiny.Clients)
	}
}

func TestBaselineRunIsClean(t *testing.T) {
	res := Run(QuietMiniConfig())
	r := res.Responses
	if r.Total() < 5000 {
		t.Fatalf("only %d requests", r.Total())
	}
	if res.Drops != 0 || r.VLRTCount() != 0 || r.Failures() != 0 {
		t.Fatalf("baseline not clean: drops=%d vlrt=%d failures=%d", res.Drops, r.VLRTCount(), r.Failures())
	}
	if mean := r.Mean(); mean > 10*time.Millisecond {
		t.Fatalf("baseline mean RT %v", mean)
	}
	if pct := r.NormalPercent(); pct < 99 {
		t.Fatalf("baseline normal%% = %v", pct)
	}
	// Even distribution across app servers (paper Section II-B).
	a, b := res.Apps[0].Served, res.Apps[1].Served
	diff := float64(a) - float64(b)
	if diff < 0 {
		diff = -diff
	}
	if diff/float64(a+b) > 0.05 {
		t.Fatalf("uneven app distribution: %d vs %d", a, b)
	}
}

func TestMillibottlenecksCauseVLRTUnderOriginalPolicy(t *testing.T) {
	res := Run(MiniConfig())
	r := res.Responses
	if r.VLRTCount() == 0 {
		t.Fatal("no VLRT requests despite millibottlenecks")
	}
	if res.Drops == 0 {
		t.Fatal("no accept-queue drops despite millibottlenecks")
	}
	if r.VLRTPercent() < 1 {
		t.Fatalf("VLRT share %v%% too small to be the paper's phenomenon", r.VLRTPercent())
	}
	// The app tier must show flush activity.
	flushes := 0
	for _, st := range res.Apps {
		if _, peak := st.DirtyBytes.PeakWindow(); peak > 0 {
			flushes++
		}
	}
	if flushes == 0 {
		t.Fatal("no dirty-page activity recorded")
	}
}

func TestRemediesReduceVLRTAndMeanRT(t *testing.T) {
	original := Run(MiniConfig())

	modified := MiniConfig()
	modified.Mechanism = "modified_get_endpoint"
	modRes := Run(modified)

	current := MiniConfig()
	current.Policy = "current_load"
	curRes := Run(current)

	origMean := float64(original.Responses.Mean())
	for name, res := range map[string]*Results{"modified": modRes, "current_load": curRes} {
		if res.Responses.VLRTPercent() >= original.Responses.VLRTPercent()/2 {
			t.Fatalf("%s: VLRT %v%% not clearly below original %v%%",
				name, res.Responses.VLRTPercent(), original.Responses.VLRTPercent())
		}
		factor := origMean / float64(res.Responses.Mean())
		if factor < 3 {
			t.Fatalf("%s: mean RT improvement only %.1fx (%v -> %v)",
				name, factor, original.Responses.Mean(), res.Responses.Mean())
		}
	}
}

func TestCurrentLoadAvoidsStalledServer(t *testing.T) {
	cfg := QuietMiniConfig()
	cfg.Policy = "current_load"
	c := New(cfg)
	// Scripted millibottleneck: stall tomcat1 at t=3s for 300ms.
	inj := mbneck.NewScriptedStalls(c.Eng, "scripted", c.Apps[0].CPU(), []mbneck.StallEvent{
		{At: 3 * time.Second, Duration: 300 * time.Millisecond},
	})
	inj.Start()
	res := c.Run()

	for i := range res.Dispatch {
		share := res.Dispatch[i].Share("tomcat1", 3*time.Second+50*time.Millisecond, 3*time.Second+300*time.Millisecond)
		if share > 0.05 {
			t.Fatalf("web %d sent %.0f%% of dispatches to the stalled server", i, share*100)
		}
	}
	if res.Responses.VLRTCount() != 0 {
		t.Fatalf("current_load produced %d VLRT requests from one 300ms stall", res.Responses.VLRTCount())
	}
}

func TestOriginalPolicyPilesOntoStalledServer(t *testing.T) {
	cfg := QuietMiniConfig() // no writeback noise; one scripted stall
	cfg.Policy = "total_request"
	cfg.Mechanism = "original_get_endpoint"
	c := New(cfg)
	inj := mbneck.NewScriptedStalls(c.Eng, "scripted", c.Apps[0].CPU(), []mbneck.StallEvent{
		{At: 3 * time.Second, Duration: 300 * time.Millisecond},
	})
	inj.Start()
	res := c.Run()

	// Once tomcat1's endpoint pools exhaust, every new arrival chooses
	// it and gets stuck: during the later part of the stall the healthy
	// server receives (almost) nothing.
	window := 100 * time.Millisecond
	for i := range res.Dispatch {
		stalledShare := res.Dispatch[i].Share("tomcat1", 3*time.Second+150*time.Millisecond, 3*time.Second+150*time.Millisecond+window)
		healthyShare := res.Dispatch[i].Share("tomcat2", 3*time.Second+150*time.Millisecond, 3*time.Second+150*time.Millisecond+window)
		if healthyShare > 0.3 && stalledShare < 0.5 {
			t.Fatalf("web %d: no pile-up (stalled=%.2f healthy=%.2f)", i, stalledShare, healthyShare)
		}
	}
	// And after the stall the backlog drains into tomcat1 while the
	// other candidates compensate (recovery period exists): total
	// dispatches still roughly balance over the whole run.
	if res.Responses.Total() == 0 {
		t.Fatal("no responses")
	}
}

func TestDetectorAttributesVLRTToAppSaturations(t *testing.T) {
	res := Run(MiniConfig())
	if res.Responses.VLRTCount() == 0 {
		t.Skip("run produced no VLRT; nothing to attribute")
	}
	var spans []mbneck.Span
	for _, st := range res.Apps {
		s := mbneck.FilterMillibottlenecks(
			mbneck.DetectSaturations(st.CPU.Series(), 95),
			50*time.Millisecond, 2*time.Second)
		spans = append(spans, s...)
	}
	if len(spans) == 0 {
		t.Fatal("no millibottleneck saturations detected on the app tier")
	}
	// Allow the retransmission delay (1s schedule) plus wedge drain.
	attr := mbneck.AttributeEvents(res.Responses.VLRTWindows(), spans, 2500*time.Millisecond)
	if attr < 0.9 {
		t.Fatalf("only %.0f%% of VLRT windows attributed to millibottlenecks", attr*100)
	}
}

func TestRunConservation(t *testing.T) {
	res := Run(MiniConfig())
	completed := res.Responses.Total()
	if completed > res.Issued {
		t.Fatalf("completed %d > issued %d", completed, res.Issued)
	}
	inFlight := res.Issued - completed
	// In-flight at run end is bounded by the client population.
	if inFlight > uint64(res.Config.Clients) {
		t.Fatalf("in-flight %d exceeds client count", inFlight)
	}
	var webServed uint64
	for _, st := range res.Webs {
		webServed += st.Served
	}
	okResponses := completed - res.Responses.Failures()
	if webServed != okResponses {
		t.Fatalf("web served %d != ok responses %d", webServed, okResponses)
	}
}

func TestRunDeterminism(t *testing.T) {
	a := Run(MiniConfig())
	b := Run(MiniConfig())
	if a.Responses.Total() != b.Responses.Total() ||
		a.Responses.Mean() != b.Responses.Mean() ||
		a.Drops != b.Drops ||
		a.Responses.VLRTCount() != b.Responses.VLRTCount() {
		t.Fatalf("identical configs diverged: %v/%v vs %v/%v",
			a.Responses.Total(), a.Responses.Mean(), b.Responses.Total(), b.Responses.Mean())
	}
}

func TestSeedChangesRun(t *testing.T) {
	cfg := MiniConfig()
	cfg.Seed1 = 999
	a := Run(cfg)
	b := Run(MiniConfig())
	if a.Responses.Total() == b.Responses.Total() && a.Responses.Mean() == b.Responses.Mean() {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestLBValueSeriesRecorded(t *testing.T) {
	res := Run(MiniConfig())
	if len(res.LBValues) != res.Config.NumWeb {
		t.Fatalf("LBValues for %d webs", len(res.LBValues))
	}
	for i, perApp := range res.LBValues {
		if len(perApp) != res.Config.NumApp {
			t.Fatalf("web %d has lb series for %d apps", i, len(perApp))
		}
		for name, series := range perApp {
			if series.Len() == 0 {
				t.Fatalf("web %d: empty lb_value series for %s", i, name)
			}
		}
	}
}

func TestTierQueueAggregation(t *testing.T) {
	res := Run(MiniConfig())
	if res.WebTierQueue.Len() == 0 || res.AppTierQueue.Len() == 0 || res.DBTierQueue.Len() == 0 {
		t.Fatal("tier queue series empty")
	}
	_, appPeak := res.AppTierQueue.PeakWindow()
	if appPeak == 0 {
		t.Fatal("app tier never queued despite millibottlenecks")
	}
}

func TestWebForMapping(t *testing.T) {
	cfg := QuietMiniConfig()
	cfg.Clients = 10
	cfg.Duration = time.Second
	c := New(cfg)
	if c.webFor(0) != c.Webs[0] || c.webFor(4) != c.Webs[0] {
		t.Fatal("first block not mapped to web 0")
	}
	if c.webFor(5) != c.Webs[1] || c.webFor(9) != c.Webs[1] {
		t.Fatal("second block not mapped to web 1")
	}
	if c.webFor(99) != c.Webs[1] {
		t.Fatal("out-of-range client not clamped to last web")
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted an invalid config")
		}
	}()
	cfg := MiniConfig()
	cfg.Policy = "bogus"
	New(cfg)
}

func TestIOWaitCorrelatesWithCPUSaturation(t *testing.T) {
	// Fig. 2d: iowait saturations coincide with transient CPU
	// saturations on the flushing server.
	res := Run(MiniConfig())
	for _, st := range res.Apps {
		iowaitSpans := mbneck.DetectSaturations(st.IOWait, 95)
		if len(iowaitSpans) == 0 {
			continue
		}
		cpuSpans := mbneck.DetectSaturations(st.CPU.Series(), 95)
		matched := 0
		for _, io := range iowaitSpans {
			for _, cpu := range cpuSpans {
				if cpu.Overlaps(io.Start, io.End, metrics.Window) {
					matched++
					break
				}
			}
		}
		if matched == 0 {
			t.Fatalf("%s: %d iowait spans, none matching a CPU saturation", st.Name, len(iowaitSpans))
		}
		return // one flushing server is enough
	}
	t.Fatal("no iowait activity on any app server")
}

func TestDirtyPageDropsCorrelateWithFlushes(t *testing.T) {
	res := Run(MiniConfig())
	st := res.Apps[0]
	// Dirty bytes must rise and abruptly drop (Fig. 2e): the series max
	// should greatly exceed its final value right after a flush.
	_, peak := st.DirtyBytes.PeakWindow()
	if peak <= 0 {
		t.Fatal("no dirty pages accumulated")
	}
	// Somewhere the series falls from above 60% of peak to below 25%
	// within a flush duration (≈400ms = 8 windows): the abrupt drop.
	dropped := false
	for i := 0; i < st.DirtyBytes.Len() && !dropped; i++ {
		if st.DirtyBytes.At(i).Max < 0.6*peak {
			continue
		}
		for j := i + 1; j <= i+8 && j < st.DirtyBytes.Len(); j++ {
			w := st.DirtyBytes.At(j)
			if w.Count > 0 && w.Min < 0.25*peak {
				dropped = true
				break
			}
		}
	}
	if !dropped {
		t.Fatal("no abrupt dirty-page drop observed")
	}
}

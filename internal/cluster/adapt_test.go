package cluster

import (
	"reflect"
	"testing"
	"time"

	"millibalance/internal/adapt"
	"millibalance/internal/mbneck"
)

// TestAdaptiveDisabledByDefault: a nil Adaptive config leaves the
// control plane entirely unarmed.
func TestAdaptiveDisabledByDefault(t *testing.T) {
	cfg := QuietMiniConfig()
	cfg.Duration = 2 * time.Second
	res := Run(cfg)
	if res.Adapt != nil {
		t.Fatalf("decision log present without Adaptive config")
	}
}

// TestAdaptiveQuarantinesFlushingBackend runs the mini topology with
// writeback millibottlenecks armed and the adaptive controller on: the
// detectors' onsets must translate into quarantine decisions, probes
// must re-admit the backends once their flushes pass, and the whole
// decision sequence must be deterministic run-to-run.
func TestAdaptiveQuarantinesFlushingBackend(t *testing.T) {
	cfg := MiniConfig()
	cfg.Adaptive = &adapt.Config{}

	res := Run(cfg)
	if res.Adapt == nil {
		t.Fatal("no decision log")
	}
	if res.Adapt.Count(adapt.ActionQuarantine) == 0 {
		t.Fatalf("no quarantine decisions over %d total", res.Adapt.Len())
	}
	if res.Adapt.Count(adapt.ActionReadmit) == 0 {
		t.Fatalf("quarantined backends never re-admitted (decisions: %d)", res.Adapt.Len())
	}
	// The run must still complete work.
	if res.Responses.Total() == 0 {
		t.Fatal("no requests completed under adaptive control")
	}
	// Event capacity was forced on (the controller needs the detectors).
	if res.Events == nil {
		t.Fatal("event log not armed by Adaptive config")
	}

	// Determinism: an identical config yields the identical decision
	// sequence — the controller runs on the simulation thread only.
	res2 := Run(cfg)
	if !reflect.DeepEqual(res.Adapt.Decisions(), res2.Adapt.Decisions()) {
		t.Fatalf("adaptive decisions differ between identical runs:\n%v\nvs\n%v",
			res.Adapt.Decisions(), res2.Adapt.Decisions())
	}
}

// TestAdaptiveFallbackWhenAllBackendsStalled stalls every app server
// simultaneously: the guardrail must refuse to quarantine the last
// backend, engage the round_robin fallback instead, and exit it once
// the stall clears — with requests still draining end to end.
func TestAdaptiveFallbackWhenAllBackendsStalled(t *testing.T) {
	cfg := QuietMiniConfig() // no natural millibottlenecks
	// Shrink the slow-release dwell so the fallback exit fits inside the
	// 10 s mini run (the default ClearDwell waits 10 s of detector
	// silence before restoring anything).
	cfg.Adaptive = &adapt.Config{
		MinDwell:   time.Second,
		ClearDwell: 2 * time.Second,
	}

	c := New(cfg)
	for i, app := range c.Apps {
		inj := mbneck.NewScriptedStalls(c.Eng, "all-stall", app.CPU(), []mbneck.StallEvent{
			{At: 3 * time.Second, Duration: 1200 * time.Millisecond},
		})
		inj.Start()
		_ = i
	}
	res := c.Run()

	if res.Adapt == nil {
		t.Fatal("no decision log")
	}
	if res.Adapt.Count(adapt.ActionFallback) == 0 {
		t.Fatalf("fallback never engaged; decisions: %v", res.Adapt.Decisions())
	}
	if res.Adapt.Count(adapt.ActionFallbackExit) == 0 {
		t.Fatalf("fallback never exited after recovery; decisions: %v", res.Adapt.Decisions())
	}
	// During fallback no backend may be quarantined, and by run end the
	// controller must be back on the base policy with nothing drained.
	if len(res.AdaptState.Quarantined) != 0 {
		t.Fatalf("backends still quarantined at end: %v", res.AdaptState.Quarantined)
	}
	if res.AdaptState.Fallback {
		t.Fatal("still in fallback at end of run")
	}
	// Requests keep draining through the stall and after.
	if res.Responses.Total() == 0 {
		t.Fatal("no requests completed")
	}
}

package cluster

import (
	"testing"
	"time"

	"millibalance/internal/admission"
	"millibalance/internal/obs"
)

// admissionMini is MiniConfig with the codel+gradient admission plane
// armed and events on, so drops are observable.
func admissionMini() Config {
	cfg := MiniConfig()
	cfg.Admission = &admission.Config{Limiter: admission.LimiterGradient, CoDel: true, LIFO: true}
	cfg.EventCapacity = 1 << 14
	return cfg
}

func TestAdmissionDisabledByDefault(t *testing.T) {
	res := Run(MiniConfig())
	if len(res.Admission) != 0 || res.AdmissionSheds != 0 {
		t.Fatalf("admission stats on an unarmed run: %+v", res.Admission)
	}
}

func TestAdmissionArmedRunIsDeterministic(t *testing.T) {
	a := Run(admissionMini())
	b := Run(admissionMini())
	if a.Responses.Total() != b.Responses.Total() ||
		a.Responses.Mean() != b.Responses.Mean() ||
		a.Responses.VLRTCount() != b.Responses.VLRTCount() ||
		a.AdmissionSheds != b.AdmissionSheds {
		t.Fatalf("identical admission-armed configs diverged: %v/%v/%v vs %v/%v/%v",
			a.Responses.Total(), a.Responses.Mean(), a.AdmissionSheds,
			b.Responses.Total(), b.Responses.Mean(), b.AdmissionSheds)
	}
	sa, sb := a.Admission, b.Admission
	if len(sa) != len(sb) || len(sa) != a.Config.NumWeb {
		t.Fatalf("admission stats for %d/%d webs, want %d", len(sa), len(sb), a.Config.NumWeb)
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("web %d gate snapshots diverged: %+v vs %+v", i, sa[i], sb[i])
		}
	}
}

func TestAdmissionShedsUnderStall(t *testing.T) {
	// Freeze one app server's CPU mid-run: the gradient limiter sees
	// RTT inflate, shrinks the limit, and the plane starts shedding —
	// visible in the gate stats and as admission_drop events.
	cfg := admissionMini()
	cfg.Admission.MaxWait = 200 * time.Millisecond
	c := New(cfg)
	c.Eng.Schedule(2*time.Second, func() {
		c.Apps[0].CPU().Stall(3 * time.Second)
	})
	res := c.Run()
	total := uint64(0)
	for _, st := range res.Admission {
		total += st.Dropped
	}
	if total == 0 || res.AdmissionSheds == 0 {
		t.Fatalf("no admission sheds despite a 3 s stall (gate drops %d, web sheds %d)",
			total, res.AdmissionSheds)
	}
	drops := res.Events.Kind(obs.KindAdmissionDrop)
	if len(drops) == 0 {
		t.Fatal("no admission_drop events despite gate drops")
	}
	for _, ev := range drops {
		if ev.Reason == "" || ev.Class == "" || ev.Source == "" {
			t.Fatalf("admission_drop event missing fields: %+v", ev)
		}
	}
	// The gradient limiter must have moved the limit during the stall.
	adjusted := false
	for _, w := range c.Webs {
		if len(w.Admission().Adjustments()) > 0 {
			adjusted = true
		}
	}
	if !adjusted {
		t.Fatal("gradient limiter never adjusted a limit")
	}
}

func TestAdmissionAccountingBalances(t *testing.T) {
	// Every issued request ends exactly one way: served, errored,
	// gave up in retransmission, or still open at run end. Admission
	// sheds are failures with responses, so they appear in the
	// recorder's failure count, not in GiveUps.
	res := Run(admissionMini())
	if res.Responses.Total() == 0 {
		t.Fatal("no responses")
	}
	var inFlight uint64
	for _, st := range res.Admission {
		inFlight += uint64(st.InFlight)
		if st.Queued != 0 {
			// Queued waiters at run end are fine (their timeout events
			// never fired), but the gauge must not have gone negative.
			if st.Queued < 0 {
				t.Fatalf("negative queue gauge: %+v", st)
			}
		}
	}
	if res.AdmissionSheds > res.Responses.Failures() {
		t.Fatalf("sheds %d exceed recorded failures %d", res.AdmissionSheds, res.Responses.Failures())
	}
}

func TestAdmissionFixedShedBoundsWait(t *testing.T) {
	// The static fixed-shed plane (the proxy-delegation preset) on a
	// deliberately tiny worker pool: waits are bounded by MaxWait, so
	// no successful response shows an accept wait beyond it, and
	// overflow sheds are recorded.
	cfg := QuietMiniConfig()
	cfg.WebWorkers = 2
	cfg.WebBacklog = 4
	cfg.Clients = 600
	cfg.ThinkTime = 50 * time.Millisecond
	cfg.Duration = 5 * time.Second
	cfg.Admission = admission.FixedShed(100 * time.Millisecond)
	res := Run(cfg)
	if res.AdmissionSheds == 0 {
		t.Fatal("tiny pool with fixed-shed admission never shed")
	}
	for _, st := range res.Admission {
		if st.Limit != 2 {
			t.Fatalf("fixed-shed gate limit %d, want worker pool 2", st.Limit)
		}
		if st.DropsCoDel != 0 {
			t.Fatalf("CoDel drops on a fixed-shed gate: %+v", st)
		}
	}
}

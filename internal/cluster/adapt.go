package cluster

import (
	"millibalance/internal/adapt"
	"millibalance/internal/lb"
	"millibalance/internal/sim"
)

// Adaptive control plane wiring for the deterministic substrate: one
// adapt.Controller per cluster, stepped on virtual-time events. The
// event log's append hook streams detector onsets/confirmations and
// rejects into the controller the instant they are emitted, probe
// outcomes flow back through each balancer's probe hook, and a
// recurring engine timer drives the controller tick — everything stays
// on the single simulation thread, so adaptive runs are exactly as
// reproducible as static ones.

// webActuator fans controller actions out to every web server's
// balancer. Each web runs its own mod_jk instance, so a hot-swap or
// quarantine applies tier-wide, the way a configuration push would.
type webActuator struct {
	c *Cluster
}

// Backends implements adapt.Actuator: the app-server names.
func (a webActuator) Backends() []string {
	out := make([]string, 0, len(a.c.Apps))
	for _, app := range a.c.Apps {
		out = append(out, app.Name())
	}
	return out
}

// SetPolicy implements adapt.Actuator. Each balancer gets a fresh
// policy instance so stateful policies (round_robin's rotation) stay
// per-balancer, matching how New distributes mechanisms. Resolution
// goes through newPolicy so a prequal target arrives with the
// cluster's probe pools attached; the balancer's SetPolicy then
// triggers the pool reseeding (clear + immediate probe round).
func (a webActuator) SetPolicy(name string) {
	for _, w := range a.c.Webs {
		p, ok := a.c.newPolicy(name)
		if !ok {
			return
		}
		w.Balancer().SetPolicy(p)
	}
}

// SetMechanism implements adapt.Actuator.
func (a webActuator) SetMechanism(name string) {
	for _, w := range a.c.Webs {
		m, ok := lb.MechanismByName(name, a.c.Eng)
		if !ok {
			return
		}
		w.Balancer().SetMechanism(m)
	}
}

// SetQuarantine implements adapt.Actuator.
func (a webActuator) SetQuarantine(backend string, on bool) {
	a.eachCandidate(backend, func(bal *lb.Balancer, cand *lb.Candidate) {
		bal.SetQuarantined(cand, on)
	})
}

// ArmProbe implements adapt.Actuator: one probe per web balancer (each
// balancer holds its own endpoint pool, so each needs its own
// evidence).
func (a webActuator) ArmProbe(backend string) {
	a.eachCandidate(backend, func(bal *lb.Balancer, cand *lb.Candidate) {
		bal.ArmProbe(cand)
	})
}

// TightenLimit implements adapt.LimitActuator: squeeze (or restore)
// every web's admission gate alongside a ladder shift. Reports false —
// no decision recorded — when admission is not armed.
func (a webActuator) TightenLimit(on bool) bool {
	if len(a.c.admGates) == 0 {
		return false
	}
	for _, g := range a.c.admGates {
		g.Tighten(on)
	}
	return true
}

func (a webActuator) eachCandidate(backend string, fn func(*lb.Balancer, *lb.Candidate)) {
	for _, w := range a.c.Webs {
		bal := w.Balancer()
		for _, cand := range bal.Candidates() {
			if cand.Name() == backend {
				fn(bal, cand)
			}
		}
	}
}

// armAdaptive builds the controller and wires it into the event log,
// the balancers' probe hooks, the outcome stream and a recurring tick.
// Called from New after instrument(), with c.events non-nil.
func (c *Cluster) armAdaptive(acfg adapt.Config) {
	if acfg.BasePolicy == "" {
		acfg.BasePolicy = c.cfg.Policy
	}
	if acfg.BaseMechanism == "" {
		// Normalize CLI short names so base and target compare equal.
		if m, ok := lb.MechanismByName(c.cfg.Mechanism, c.Eng); ok {
			acfg.BaseMechanism = m.Name()
		} else {
			acfg.BaseMechanism = c.cfg.Mechanism
		}
	}
	ctrl := adapt.NewController(acfg, webActuator{c})
	c.adapt = ctrl
	c.addEventHook(ctrl.OnEvent)
	for _, w := range c.Webs {
		w.Balancer().SetProbeHook(func(cand *lb.Candidate, rt sim.Time, ok bool) {
			ctrl.OnProbe(c.Eng.Now(), cand.Name(), rt, ok)
		})
	}
	var tick func()
	tick = func() {
		ctrl.Tick(c.Eng.Now())
		c.Eng.Schedule(ctrl.TickInterval(), tick)
	}
	c.Eng.Schedule(ctrl.TickInterval(), tick)
}

// AdaptController exposes the adaptive controller (nil unless
// Config.Adaptive was set).
func (c *Cluster) AdaptController() *adapt.Controller { return c.adapt }

package cluster

import (
	"fmt"
	"time"

	"millibalance/internal/adapt"
	"millibalance/internal/admission"
	"millibalance/internal/lb"
	"millibalance/internal/mbneck"
	"millibalance/internal/metrics"
	"millibalance/internal/netmodel"
	"millibalance/internal/obs"
	"millibalance/internal/probe"
	"millibalance/internal/resource"
	"millibalance/internal/server"
	"millibalance/internal/sim"
	"millibalance/internal/stats"
	"millibalance/internal/telemetry"
	"millibalance/internal/trace"
	"millibalance/internal/workload"
)

// ServerStats bundles one server's measurement series.
type ServerStats struct {
	// Name identifies the server.
	Name string
	// Queue is the sampled queued-request series (Fig. 2b and friends).
	Queue *stats.Series
	// CPU is the windowed utilization sampler (Fig. 2c, 5, 6b).
	CPU *metrics.CPUUtilSampler
	// IOWait is the sampled iowait saturation series in percent
	// (Fig. 2d): 100 while a flush is writing, else 0.
	IOWait *stats.Series
	// DirtyBytes is the sampled dirty-page size series (Fig. 2e).
	DirtyBytes *stats.Series
	// Served is the requests (or queries) completed by run end.
	Served uint64
}

// Results is everything one experiment run measured.
type Results struct {
	// Config echoes the run's configuration.
	Config Config
	// Responses aggregates client-observed outcomes.
	Responses *metrics.ResponseRecorder
	// Issued is how many requests clients issued.
	Issued uint64
	// Drops is connections dropped at web accept queues.
	Drops uint64
	// Retransmits is the total retry attempts the transport scheduled.
	Retransmits uint64
	// GiveUps is requests whose retransmission schedule was exhausted.
	GiveUps uint64
	// Webs, Apps and DB carry per-server series.
	Webs []*ServerStats
	Apps []*ServerStats
	DB   *ServerStats
	// WebTierQueue and AppTierQueue are tier-aggregated queue series.
	WebTierQueue *stats.Series
	AppTierQueue *stats.Series
	DBTierQueue  *stats.Series
	// Dispatch is the per-web-server workload-distribution recorder of
	// successful dispatches (keyed by app server name).
	Dispatch []*metrics.DistributionRecorder
	// Assign is the per-web-server routing-decision recorder: every
	// scheduler choice counts, including choices stuck in get_endpoint.
	// The paper's workload-distribution plots use this view.
	Assign []*metrics.DistributionRecorder
	// LBValues holds, per web server, the sampled lb_value series of
	// each candidate (Fig. 10b, 11b).
	LBValues []map[string]*stats.Series
	// Rejects is balancer-level dispatch rejections summed over webs.
	Rejects uint64
	// Trace is the access log (nil unless Config.TraceCapacity > 0).
	Trace *trace.Log
	// Spans is the request-lifecycle span ring (nil unless
	// Config.SpanCapacity > 0).
	Spans *obs.Tracer
	// Events is the observability event log: balancer decisions, state
	// transitions, rejects and online detections (nil unless
	// Config.EventCapacity > 0).
	Events *obs.EventLog
	// Online maps each server to the millibottleneck spans its streaming
	// detector confirmed during the run (empty unless
	// Config.EventCapacity > 0).
	Online map[string][]mbneck.Span
	// Adapt is the adaptive controller's decision log (nil unless
	// Config.Adaptive was set).
	Adapt *adapt.DecisionLog
	// AdaptState is the controller's final state (zero unless
	// Config.Adaptive was set).
	AdaptState adapt.State
	// Timeline is the fine-grained resource-timeline set (nil unless
	// Config.Telemetry was set): per-server queue depth, busy fraction,
	// frozen flag, dirty bytes and pool occupancy at the telemetry
	// interval.
	Timeline *telemetry.Timeline
	// Admission holds one final gate snapshot per web server (empty
	// unless Config.Admission was set).
	Admission []admission.Stats
	// AdmissionSheds is requests refused by the overload-control plane
	// summed over webs.
	AdmissionSheds uint64
	// Chains is the online correlator's ranked causal-chain reports, one
	// per millibottleneck the streaming detectors confirmed (empty
	// unless both Config.Telemetry and Config.EventCapacity were set).
	Chains []telemetry.Chain
}

// Cluster is an assembled, instrumented n-tier system ready to run.
type Cluster struct {
	Eng  *sim.Engine
	Webs []*server.Web
	Apps []*server.App
	DB   *server.DB

	cfg        Config
	group      *workload.Group
	openLoop   *workload.OpenLoop
	retrans    *netmodel.Retransmitter
	rec        *metrics.ResponseRecorder
	poller     *metrics.Poller
	accessLog  *trace.Log
	tracer     *obs.Tracer
	events     *obs.EventLog
	detectors  map[string]*obs.Detector
	adapt      *adapt.Controller
	timeline   *telemetry.Timeline
	telPoller  *metrics.Poller
	correlator *telemetry.Correlator
	pools      *probe.Pools
	prober     *probe.SimProber
	admGates   []*admission.Gate
	eventHooks []func(obs.Event)
	giveUps    uint64

	webStats []*ServerStats
	appStats []*ServerStats
	dbStats  *ServerStats
	tierWeb  *metrics.GaugeSampler
	tierApp  *metrics.GaugeSampler
	tierDB   *metrics.GaugeSampler
	dispatch []*metrics.DistributionRecorder
	assign   []*metrics.DistributionRecorder
	lbValues []map[string]*stats.Series
}

// New assembles a cluster from the config. It panics on an invalid
// config (use Config.Validate to check first).
func New(cfg Config) *Cluster {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.SampleInterval <= 0 {
		cfg.SampleInterval = 10 * time.Millisecond
	}
	if cfg.Adaptive != nil && cfg.EventCapacity <= 0 {
		// The controller feeds on the event log's detector stream.
		cfg.EventCapacity = 1 << 16
	}
	eng := sim.NewEngine(cfg.Seed1, cfg.Seed2)
	c := &Cluster{Eng: eng, cfg: cfg}

	c.DB = server.NewDB(eng, server.DBConfig{Name: "mysql1", Cores: cfg.DBCores, Workers: cfg.DBWorkers})
	for i := 0; i < cfg.NumApp; i++ {
		wb := cfg.AppWriteback
		// Stagger flush cycles across the tier; servers that flush in
		// lockstep would stall the whole tier at once, which neither
		// the paper's testbed nor any real deployment exhibits.
		if wb.Interval > 0 && cfg.NumApp > 1 {
			wb.Phase = wb.Interval + wb.Interval*sim.Time(i)/sim.Time(cfg.NumApp)
		}
		c.Apps = append(c.Apps, server.NewApp(eng, server.AppConfig{
			Name:        fmt.Sprintf("tomcat%d", i+1),
			Cores:       cfg.AppCores,
			Workers:     cfg.AppWorkers,
			DBConns:     cfg.DBConns,
			LinkLatency: cfg.LinkLatency,
			Writeback:   wb,
		}, c.DB))
	}
	c.armProbing()
	policy, _ := c.newPolicy(cfg.Policy)
	for i := 0; i < cfg.NumWeb; i++ {
		mech, _ := lb.MechanismByName(cfg.Mechanism, eng)
		// One admission gate per web server, sized to its worker pool
		// and driven entirely by the engine clock so an armed run
		// still replays byte-identically.
		var gate *admission.Gate
		if cfg.Admission != nil {
			gate = admission.NewGate(*cfg.Admission, cfg.WebWorkers)
			gate.SetClock(eng.Now)
			c.admGates = append(c.admGates, gate)
		}
		c.Webs = append(c.Webs, server.NewWeb(eng, server.WebConfig{
			Name:               fmt.Sprintf("apache%d", i+1),
			Cores:              cfg.WebCores,
			Workers:            cfg.WebWorkers,
			AcceptBacklog:      cfg.WebBacklog,
			ConnPoolSize:       cfg.ConnPoolSize,
			Policy:             policy,
			Mechanism:          mech,
			LB:                 cfg.LB,
			LinkLatency:        cfg.LinkLatency,
			LogBytesPerRequest: cfg.WebLogBytes,
			Writeback:          cfg.WebWriteback,
			Admission:          gate,
		}, c.Apps))
	}

	c.retrans = netmodel.NewRetransmitter(eng, cfg.Retransmit)
	c.rec = metrics.NewResponseRecorderHorizon(cfg.Duration)
	if cfg.TraceCapacity > 0 {
		c.accessLog = trace.NewLog(cfg.TraceCapacity)
	}
	if cfg.SpanCapacity > 0 {
		c.tracer = obs.NewTracer(cfg.SpanCapacity)
	}
	if cfg.EventCapacity > 0 {
		c.events = obs.NewEventLog(cfg.EventCapacity)
	}
	if c.events != nil {
		for i, g := range c.admGates {
			name := c.Webs[i].Name()
			g.SetDropHook(func(now sim.Time, cls admission.Class, r admission.Reason) {
				c.events.Append(obs.Event{
					T:      now,
					Kind:   obs.KindAdmissionDrop,
					Source: name,
					Reason: r.String(),
					Class:  cls.String(),
				})
			})
		}
	}
	c.detectors = make(map[string]*obs.Detector)
	onOutcome := func(req *workload.Request, o workload.Outcome) {
		c.rec.Record(eng.Now(), o)
		if c.adapt != nil {
			c.adapt.OnOutcome(eng.Now(), o.ResponseTime, o.OK)
		}
		// Finish before reading the breakdown so stages still open at
		// completion (worker occupancy on a reject path) are closed.
		c.tracer.Finish(req.Span, eng.Now(), o.OK)
		if c.accessLog != nil {
			entry := trace.Entry{
				Time:         eng.Now(),
				RequestID:    req.ID,
				ClientID:     req.ClientID,
				Interaction:  req.Interaction.Name,
				Web:          req.Web,
				Backend:      req.Backend,
				OK:           o.OK,
				ResponseTime: o.ResponseTime,
				Retransmits:  o.Retransmits,
			}
			if req.Span != nil {
				b := req.Span.Breakdown()
				entry.Stages = &b
			}
			c.accessLog.Append(entry)
		}
	}
	if cfg.OpenLoopRate > 0 {
		c.openLoop = workload.NewOpenLoop(eng, workload.OpenLoopConfig{
			Rate:      cfg.OpenLoopRate,
			Mix:       cfg.Mix(),
			Clients:   cfg.Clients,
			OnOutcome: onOutcome,
		}, c.submit)
	} else {
		c.group = workload.NewGroup(eng, cfg.Clients, workload.ClientConfig{
			ThinkTime: cfg.ThinkTime,
			Mix:       cfg.Mix(),
			Burst:     cfg.Burst,
			OnOutcome: onOutcome,
		}, c.submit)
	}

	c.instrument()
	c.instrumentTelemetry()
	if cfg.Adaptive != nil {
		c.armAdaptive(*cfg.Adaptive)
	}
	return c
}

// webFor maps a client to its web server: contiguous blocks, as the
// paper's client nodes are wired to specific web servers.
func (c *Cluster) webFor(clientID int) *server.Web {
	per := (c.cfg.Clients + len(c.Webs) - 1) / len(c.Webs)
	idx := clientID / per
	if idx >= len(c.Webs) {
		idx = len(c.Webs) - 1
	}
	return c.Webs[idx]
}

// submit carries a request over the lossy transport to its web server.
func (c *Cluster) submit(req *workload.Request) {
	web := c.webFor(req.ClientID)
	req.Span = c.tracer.Start(req.ID, c.Eng.Now())
	c.retrans.SendSpan(req.Span,
		func() bool {
			if web.TryAccept(req) {
				return true
			}
			req.Retransmits++
			return false
		},
		func() {
			c.giveUps++
			req.Finish(workload.Outcome{
				OK:           false,
				ResponseTime: c.Eng.Now() - req.IssuedAt,
				Retransmits:  req.Retransmits,
			})
		})
}

// instrument wires every sampler and hook. Every windowed series is
// preallocated for the configured run duration so the recording hot
// path never regrows a buffer mid-run.
func (c *Cluster) instrument() {
	horizon := c.cfg.Duration
	newSeries := func() *stats.Series { return stats.NewSeriesHorizon(metrics.Window, horizon) }
	c.poller = metrics.NewPoller(c.Eng, c.cfg.SampleInterval)
	for _, w := range c.Webs {
		w := w
		st := &ServerStats{
			Name:       w.Name(),
			CPU:        metrics.NewCPUUtilSamplerHorizon(w.CPU(), horizon),
			Queue:      newSeries(),
			IOWait:     newSeries(),
			DirtyBytes: newSeries(),
		}
		c.webStats = append(c.webStats, st)
		c.addServerSamplers(st, c.newDetector(st), func() (int, bool, int64) {
			return w.QueuedRequests(), w.Writeback().Flushing(), w.Writeback().DirtyBytes()
		})

		bal := w.Balancer()
		dist := metrics.NewDistributionRecorderHorizon(horizon)
		c.dispatch = append(c.dispatch, dist)
		bal.SetDispatchHook(func(cand *lb.Candidate) { dist.Incr(cand.Name(), c.Eng.Now()) })

		assign := metrics.NewDistributionRecorderHorizon(horizon)
		c.assign = append(c.assign, assign)
		bal.SetAssignHook(func(cand *lb.Candidate) {
			assign.Incr(cand.Name(), c.Eng.Now())
			if c.events != nil {
				c.events.Append(obs.Event{
					T:          c.Eng.Now(),
					Kind:       obs.KindDecision,
					Source:     w.Name(),
					Chosen:     cand.Name(),
					Candidates: candidateViews(bal.Snapshot()),
				})
			}
		})
		if c.events != nil {
			bal.SetStateHook(func(cand *lb.Candidate, from, to lb.State) {
				c.events.Append(obs.Event{
					T:       c.Eng.Now(),
					Kind:    obs.KindState,
					Source:  w.Name(),
					Backend: cand.Name(),
					From:    from.String(),
					To:      to.String(),
				})
			})
			bal.SetRejectHook(func() {
				c.events.Append(obs.Event{T: c.Eng.Now(), Kind: obs.KindReject, Source: w.Name()})
			})
		}

		lbSeries := make(map[string]*stats.Series, len(c.Apps))
		for _, a := range c.Apps {
			lbSeries[a.Name()] = newSeries()
		}
		c.lbValues = append(c.lbValues, lbSeries)
		var snapBuf []lb.Snapshot
		c.poller.Add(func(now sim.Time) {
			snapBuf = bal.AppendSnapshot(snapBuf[:0])
			for _, snap := range snapBuf {
				lbSeries[snap.Name].Add(now, snap.LBValue)
			}
		})
	}
	for _, a := range c.Apps {
		a := a
		st := &ServerStats{
			Name:       a.Name(),
			CPU:        metrics.NewCPUUtilSamplerHorizon(a.CPU(), horizon),
			Queue:      newSeries(),
			IOWait:     newSeries(),
			DirtyBytes: newSeries(),
		}
		c.appStats = append(c.appStats, st)
		c.addServerSamplers(st, c.newDetector(st), func() (int, bool, int64) {
			return a.QueuedRequests(), a.Writeback().Flushing(), a.Writeback().DirtyBytes()
		})
	}
	c.dbStats = &ServerStats{
		Name:       c.DB.Name(),
		CPU:        metrics.NewCPUUtilSamplerHorizon(c.DB.CPU(), horizon),
		Queue:      newSeries(),
		IOWait:     newSeries(),
		DirtyBytes: newSeries(),
	}
	dbDet := c.newDetector(c.dbStats)
	c.poller.Add(func(now sim.Time) {
		queue := float64(c.DB.QueuedRequests())
		c.dbStats.Queue.Add(now, queue)
		dbDet.ObserveQueue(now, queue)
		c.dbStats.CPU.Sample(now)
	})

	c.tierWeb = metrics.NewGaugeSampler(func() float64 {
		total := 0
		for _, w := range c.Webs {
			total += w.QueuedRequests()
		}
		return float64(total)
	})
	c.tierApp = metrics.NewGaugeSampler(func() float64 {
		total := 0
		for _, a := range c.Apps {
			total += a.QueuedRequests()
		}
		return float64(total)
	})
	c.tierDB = metrics.NewGaugeSampler(func() float64 { return float64(c.DB.QueuedRequests()) })
	c.poller.Add(c.tierWeb.Sample)
	c.poller.Add(c.tierApp.Sample)
	c.poller.Add(c.tierDB.Sample)
}

// instrumentTelemetry arms the fine-grained resource-timeline sampler:
// one track per (server, signal), fed off the sim clock by a dedicated
// poller at the telemetry interval. Everything runs on the engine
// thread at deterministic instants — an armed run replays
// byte-identically, it just also records where the time went.
func (c *Cluster) instrumentTelemetry() {
	if c.cfg.Telemetry == nil {
		return
	}
	tcfg := *c.cfg.Telemetry
	if tcfg.Interval <= 0 {
		tcfg.Interval = metrics.Window
	}
	if tcfg.Capacity <= 0 && c.cfg.Duration > 0 {
		// Size rings to hold the whole run so offline correlation sees
		// every sample; endless runs keep the package default.
		tcfg.Capacity = int(c.cfg.Duration/tcfg.Interval) + 2
	}
	c.timeline = telemetry.NewTimeline(tcfg)
	s := telemetry.NewSampler(c.timeline)
	server := func(name string, cpu *resource.CPU, queued func() int) {
		s.Register(name, telemetry.SignalQueueDepth, func() float64 { return float64(queued()) })
		s.Register(name, telemetry.SignalBusyFrac, func() float64 {
			return float64(cpu.BusyCores()) / float64(cpu.Cores())
		})
		s.Register(name, telemetry.SignalFrozen, func() float64 {
			if cpu.Stalled() {
				return 1
			}
			return 0
		})
	}
	for _, w := range c.Webs {
		w := w
		server(w.Name(), w.CPU(), w.QueuedRequests)
		s.Register(w.Name(), telemetry.SignalDirtyBytes, func() float64 { return float64(w.Writeback().DirtyBytes()) })
		if g := w.Admission(); g != nil {
			s.Register(w.Name(), telemetry.SignalAdmitLimit, func() float64 { return float64(g.Limit()) })
			s.Register(w.Name(), telemetry.SignalAdmitInFlight, func() float64 { return float64(g.InFlight()) })
			s.Register(w.Name(), telemetry.SignalAdmitQueue, func() float64 { return float64(g.Queued()) })
			s.Register(w.Name(), telemetry.SignalAdmitDropRate, func() float64 { return g.DropRate(c.Eng.Now()) })
		}
	}
	for _, a := range c.Apps {
		a := a
		server(a.Name(), a.CPU(), a.QueuedRequests)
		s.Register(a.Name(), telemetry.SignalDirtyBytes, func() float64 { return float64(a.Writeback().DirtyBytes()) })
		s.Register(a.Name(), telemetry.SignalConnPoolInUse, func() float64 { return float64(a.DBConnsInUse()) })
		if c.pools != nil {
			name := a.Name()
			s.Register(name, telemetry.SignalProbePoolDepth, func() float64 { return float64(c.pools.Depth(name)) })
			s.Register(name, telemetry.SignalProbeStalenessMs, func() float64 {
				age, ok := c.pools.Staleness(name)
				if !ok {
					return -1
				}
				return float64(age) / float64(time.Millisecond)
			})
		}
	}
	server(c.DB.Name(), c.DB.CPU(), c.DB.QueuedRequests)
	c.telPoller = metrics.NewPoller(c.Eng, sim.Time(tcfg.Interval))
	c.telPoller.Add(s.Sample)
	if c.events != nil {
		c.correlator = telemetry.NewCorrelator(c.timeline, telemetry.CorrelateConfig{})
		c.addEventHook(c.correlator.OnEvent)
	}
}

// addEventHook subscribes fn to the event log's append stream. The log
// supports a single hook, so the cluster owns a fan-out; hooks run in
// subscription order, on the engine thread, outside the log's lock.
func (c *Cluster) addEventHook(fn func(obs.Event)) {
	if c.events == nil || fn == nil {
		return
	}
	c.eventHooks = append(c.eventHooks, fn)
	if len(c.eventHooks) == 1 {
		c.events.SetAppendHook(func(ev obs.Event) {
			for _, h := range c.eventHooks {
				h(ev)
			}
		})
	}
}

// newDetector attaches a streaming millibottleneck detector to a
// server's utilization sampler when the event log is enabled; it
// returns nil (safe to use) otherwise.
func (c *Cluster) newDetector(st *ServerStats) *obs.Detector {
	if c.events == nil {
		return nil
	}
	det := obs.NewDetector(st.Name, obs.DetectorConfig{Window: metrics.Window}, c.events)
	st.CPU.OnSample = det.ObserveUtil
	c.detectors[st.Name] = det
	return det
}

// addServerSamplers registers the per-server gauge reads. det may be
// nil (detection disabled).
func (c *Cluster) addServerSamplers(st *ServerStats, det *obs.Detector, read func() (queue int, flushing bool, dirty int64)) {
	c.poller.Add(func(now sim.Time) {
		queue, flushing, dirty := read()
		st.Queue.Add(now, float64(queue))
		det.ObserveQueue(now, float64(queue))
		iowait := 0.0
		if flushing {
			iowait = 100
		}
		st.IOWait.Add(now, iowait)
		st.DirtyBytes.Add(now, float64(dirty))
		st.CPU.Sample(now)
	})
}

// candidateViews converts a balancer snapshot into event views.
func candidateViews(snaps []lb.Snapshot) []obs.CandidateView {
	out := make([]obs.CandidateView, len(snaps))
	for i, s := range snaps {
		out[i] = obs.CandidateView{
			Name:           s.Name,
			LBValue:        s.LBValue,
			State:          s.State.String(),
			InFlight:       s.InFlight,
			FreeEndpoints:  s.FreeEndpoints,
			ProbeInFlight:  s.ProbeInFlight,
			ProbeLatencyMs: float64(s.ProbeLatency) / float64(time.Millisecond),
			ProbeAgeMs:     float64(s.ProbeAge) / float64(time.Millisecond),
			ProbeFresh:     s.ProbeFresh,
		}
	}
	return out
}

// Run executes the experiment for the configured duration and returns
// the collected results. It may be called once.
func (c *Cluster) Run() *Results {
	c.poller.Start()
	if c.telPoller != nil {
		c.telPoller.Start()
	}
	if c.prober != nil {
		c.prober.Start()
	}
	if c.openLoop != nil {
		c.openLoop.Start()
	} else {
		c.group.Start()
	}
	c.Eng.Run(c.cfg.Duration)
	if c.openLoop != nil {
		c.openLoop.Stop()
	} else {
		c.group.Stop()
	}
	c.poller.Stop()
	if c.telPoller != nil {
		c.telPoller.Stop()
	}
	for _, det := range c.detectors {
		det.Finish()
	}
	return c.results()
}

func (c *Cluster) results() *Results {
	issued := uint64(0)
	if c.openLoop != nil {
		issued = c.openLoop.Issued()
	} else {
		issued = c.group.Issued()
	}
	res := &Results{
		Config:       c.cfg,
		Responses:    c.rec,
		Issued:       issued,
		Retransmits:  c.retrans.Retransmits(),
		GiveUps:      c.giveUps,
		Webs:         c.webStats,
		Apps:         c.appStats,
		DB:           c.dbStats,
		WebTierQueue: c.tierWeb.Series(),
		AppTierQueue: c.tierApp.Series(),
		DBTierQueue:  c.tierDB.Series(),
		Dispatch:     c.dispatch,
		Assign:       c.assign,
		LBValues:     c.lbValues,
		Trace:        c.accessLog,
		Spans:        c.tracer,
		Events:       c.events,
	}
	if len(c.detectors) > 0 {
		res.Online = make(map[string][]mbneck.Span, len(c.detectors))
		for name, det := range c.detectors {
			res.Online[name] = det.Saturations()
		}
	}
	if c.adapt != nil {
		res.Adapt = c.adapt.Log()
		res.AdaptState = c.adapt.State()
	}
	res.Timeline = c.timeline
	res.Chains = c.correlator.Chains()
	for i, w := range c.Webs {
		c.webStats[i].Served = w.Served()
		res.Drops += w.Drops()
		res.Rejects += w.Balancer().Rejects()
		if g := w.Admission(); g != nil {
			res.Admission = append(res.Admission, g.Stats())
			res.AdmissionSheds += w.AdmissionSheds()
		}
	}
	for i, a := range c.Apps {
		c.appStats[i].Served = a.Served()
	}
	c.dbStats.Served = c.DB.Served()
	return res
}

// Run is the package-level convenience: assemble and run in one call.
func Run(cfg Config) *Results {
	return New(cfg).Run()
}

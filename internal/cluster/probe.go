package cluster

import (
	"time"

	"millibalance/internal/lb"
	"millibalance/internal/netmodel"
	"millibalance/internal/probe"
)

// Probe wiring for the deterministic substrate: the prober's probe
// RTTs are ordinary engine events — a link traversal, a tiny CPU burst
// on the probed app server, a link traversal back — so armed runs
// replay byte-identically. A frozen app server holds its probe until
// the stall ends, which is exactly what lets the pools go stale and the
// prequal policy stop routing to it.

// probeServiceDemand is the CPU burst a probe costs the probed server —
// a counter read plus marshalling, far below a request's service time.
const probeServiceDemand = 50 * time.Microsecond

// armProbing builds the probe pools and the sim prober when this run
// can need them: an explicit Config.Probe, prequal as the static
// policy, or prequal anywhere in the adaptive ladder's swap targets.
// Runs that can never dispatch through prequal skip the subsystem
// entirely, keeping their event sequences — and digests — unchanged.
func (c *Cluster) armProbing() {
	need := c.cfg.Probe != nil || c.cfg.Policy == "prequal"
	if ac := c.cfg.Adaptive; ac != nil && (ac.PolicyTarget == "prequal" || ac.FallbackPolicy == "prequal") {
		need = true
	}
	if !need {
		return
	}
	var pcfg probe.Config
	if c.cfg.Probe != nil {
		pcfg = *c.cfg.Probe
	}
	c.pools = probe.NewPools(pcfg, func() time.Duration { return c.Eng.Now() })
	targets := make([]probe.SimTarget, 0, len(c.Apps))
	for _, a := range c.Apps {
		a := a
		targets = append(targets, probe.SimTarget{
			Name:     a.Name(),
			Link:     netmodel.NewLink(c.Eng, c.cfg.LinkLatency),
			InFlight: func() float64 { return float64(a.QueuedRequests()) },
			Service:  func(done func()) { a.CPU().Submit(probeServiceDemand, done) },
		})
	}
	c.prober = probe.NewSimProber(c.Eng, c.pools, targets)
}

// newPolicy resolves a policy name the way lb.PolicyByName does, but
// additionally attaches this cluster's probe pools to a prequal result
// and hooks its runtime reseeding (pool clear + an immediate probe
// round) so a hot-swap starts from live data.
func (c *Cluster) newPolicy(name string) (lb.Policy, bool) {
	p, ok := lb.PolicyByName(name)
	if !ok {
		return nil, false
	}
	if pq, isPQ := p.(*lb.Prequal); isPQ && c.pools != nil {
		pq.AttachPools(c.pools)
		pq.SetSeedHook(func() {
			c.pools.Clear()
			c.prober.ProbeAll()
		})
	}
	return p, ok
}

// Pools exposes the probe pools (nil unless probing is armed).
func (c *Cluster) Pools() *probe.Pools { return c.pools }

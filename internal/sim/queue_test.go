package sim

import (
	"testing"
	"testing/quick"
)

func TestFIFOEmpty(t *testing.T) {
	var q FIFO[int]
	if q.Len() != 0 {
		t.Fatalf("Len = %d", q.Len())
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty returned ok")
	}
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty returned ok")
	}
}

func TestFIFOOrder(t *testing.T) {
	var q FIFO[int]
	for i := 0; i < 100; i++ {
		q.Push(i)
	}
	for i := 0; i < 100; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = %d,%v want %d", v, ok, i)
		}
	}
}

func TestFIFOInterleaved(t *testing.T) {
	var q FIFO[int]
	next := 0
	pushed := 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 3; i++ {
			q.Push(pushed)
			pushed++
		}
		for i := 0; i < 2; i++ {
			v, ok := q.Pop()
			if !ok || v != next {
				t.Fatalf("round %d: Pop = %d,%v want %d", round, v, ok, next)
			}
			next++
		}
	}
	if q.Len() != pushed-next {
		t.Fatalf("Len = %d, want %d", q.Len(), pushed-next)
	}
}

func TestFIFOPeekDoesNotRemove(t *testing.T) {
	var q FIFO[string]
	q.Push("a")
	q.Push("b")
	if v, _ := q.Peek(); v != "a" {
		t.Fatalf("Peek = %q", v)
	}
	if q.Len() != 2 {
		t.Fatalf("Peek changed Len to %d", q.Len())
	}
}

func TestFIFOClear(t *testing.T) {
	var q FIFO[int]
	for i := 0; i < 10; i++ {
		q.Push(i)
	}
	q.Clear()
	if q.Len() != 0 {
		t.Fatalf("Len after Clear = %d", q.Len())
	}
	q.Push(42)
	if v, ok := q.Pop(); !ok || v != 42 {
		t.Fatalf("Pop after Clear = %d,%v", v, ok)
	}
}

// Property: a FIFO behaves exactly like a slice used as a queue under any
// interleaving of pushes and pops.
func TestQuickFIFOMatchesSlice(t *testing.T) {
	f := func(ops []int16) bool {
		var q FIFO[int16]
		var ref []int16
		for _, op := range ops {
			if op >= 0 {
				q.Push(op)
				ref = append(ref, op)
			} else {
				v, ok := q.Pop()
				if len(ref) == 0 {
					if ok {
						return false
					}
					continue
				}
				if !ok || v != ref[0] {
					return false
				}
				ref = ref[1:]
			}
		}
		return q.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPoolTryAcquire(t *testing.T) {
	p := NewPool(2)
	if !p.TryAcquire() || !p.TryAcquire() {
		t.Fatal("TryAcquire failed with free tokens")
	}
	if p.TryAcquire() {
		t.Fatal("TryAcquire succeeded with no free tokens")
	}
	if p.InUse() != 2 || p.Free() != 0 {
		t.Fatalf("InUse=%d Free=%d", p.InUse(), p.Free())
	}
}

func TestPoolAcquireQueuesWaiter(t *testing.T) {
	p := NewPool(1)
	got := []string{}
	p.Acquire(func() { got = append(got, "first") })
	p.Acquire(func() { got = append(got, "second") })
	if len(got) != 1 || p.Waiting() != 1 {
		t.Fatalf("got=%v waiting=%d", got, p.Waiting())
	}
	p.Release()
	if len(got) != 2 || got[1] != "second" {
		t.Fatalf("waiter not granted on release: %v", got)
	}
	if p.InUse() != 1 {
		t.Fatalf("token not passed through: InUse=%d", p.InUse())
	}
}

func TestPoolReleaseWithoutWaiters(t *testing.T) {
	p := NewPool(1)
	p.Acquire(func() {})
	p.Release()
	if p.InUse() != 0 {
		t.Fatalf("InUse = %d after release", p.InUse())
	}
}

func TestPoolReleaseUnheldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Release without token did not panic")
		}
	}()
	NewPool(1).Release()
}

func TestPoolFIFOGrantOrder(t *testing.T) {
	p := NewPool(1)
	p.Acquire(func() {})
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		p.Acquire(func() { got = append(got, i) })
	}
	for i := 0; i < 5; i++ {
		p.Release()
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("grant order = %v", got)
		}
	}
}

func TestPoolResizeGrow(t *testing.T) {
	p := NewPool(1)
	p.Acquire(func() {})
	granted := 0
	p.Acquire(func() { granted++ })
	p.Acquire(func() { granted++ })
	p.Resize(3)
	if granted != 2 {
		t.Fatalf("Resize granted %d waiters, want 2", granted)
	}
	if p.InUse() != 3 {
		t.Fatalf("InUse = %d, want 3", p.InUse())
	}
}

func TestPoolResizeShrinkDrains(t *testing.T) {
	p := NewPool(3)
	for i := 0; i < 3; i++ {
		p.Acquire(func() {})
	}
	p.Resize(1)
	if p.Free() != -2 {
		t.Fatalf("Free = %d, want -2 while draining", p.Free())
	}
	p.Release()
	p.Release()
	if p.Free() != 0 {
		t.Fatalf("Free = %d after drain, want 0", p.Free())
	}
	if p.TryAcquire() {
		t.Fatal("TryAcquire succeeded while over capacity")
	}
}

func TestPoolNegativeCapacity(t *testing.T) {
	p := NewPool(-5)
	if p.Cap() != 0 {
		t.Fatalf("Cap = %d, want 0", p.Cap())
	}
	if p.TryAcquire() {
		t.Fatal("TryAcquire succeeded on zero-capacity pool")
	}
}

// Property: tokens are conserved — after any valid sequence of operations,
// inUse is within [0, max(cap, peak)] and waiters only exist when no token
// is free.
func TestQuickPoolConservation(t *testing.T) {
	f := func(ops []uint8, capacity uint8) bool {
		c := int(capacity%8) + 1
		p := NewPool(c)
		held := 0
		for _, op := range ops {
			switch op % 3 {
			case 0:
				if p.TryAcquire() {
					held++
				}
			case 1:
				granted := false
				p.Acquire(func() { granted = true })
				if granted {
					held++
				}
			case 2:
				if held > 0 {
					wasWaiting := p.Waiting()
					p.Release()
					if wasWaiting == 0 {
						held--
					}
				}
			}
			if p.InUse() < 0 || p.InUse() > c {
				return false
			}
			if p.Waiting() > 0 && p.InUse() < c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

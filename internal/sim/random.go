package sim

import (
	"math"
	"time"
)

// Exponential draws an exponentially distributed duration with the given
// mean. A non-positive mean returns zero.
func (e *Engine) Exponential(mean Time) Time {
	if mean <= 0 {
		return 0
	}
	return Time(e.rng.ExpFloat64() * float64(mean))
}

// Uniform draws a duration uniformly from [lo, hi). If hi <= lo it
// returns lo.
func (e *Engine) Uniform(lo, hi Time) Time {
	if hi <= lo {
		return lo
	}
	return lo + Time(e.rng.Int64N(int64(hi-lo)))
}

// Normal draws a normally distributed duration with the given mean and
// standard deviation, truncated at zero.
func (e *Engine) Normal(mean, stddev Time) Time {
	d := float64(mean) + e.rng.NormFloat64()*float64(stddev)
	if d < 0 {
		return 0
	}
	return Time(d)
}

// LogNormal draws a log-normally distributed duration whose underlying
// normal has parameters mu and sigma (of log-nanoseconds). It is used for
// heavy-ish service-time tails.
func (e *Engine) LogNormal(mu, sigma float64) Time {
	return Time(math.Exp(mu + sigma*e.rng.NormFloat64()))
}

// Pareto draws a bounded Pareto-distributed duration with minimum xm and
// shape alpha, capped at maxVal. It models rare heavy requests.
func (e *Engine) Pareto(xm Time, alpha float64, maxVal Time) Time {
	if alpha <= 0 || xm <= 0 {
		return xm
	}
	u := e.rng.Float64()
	// Avoid division by zero at u == 0 (Float64 returns [0,1)).
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	d := Time(float64(xm) / math.Pow(u, 1/alpha))
	if maxVal > 0 && d > maxVal {
		return maxVal
	}
	return d
}

// Bernoulli reports true with probability p.
func (e *Engine) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return e.rng.Float64() < p
}

// PickWeighted returns an index in [0, len(weights)) drawn proportionally
// to the weights. Negative weights count as zero; if all weights are zero
// it returns 0.
func (e *Engine) PickWeighted(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	x := e.rng.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Jitter returns d scaled by a uniform factor in [1-frac, 1+frac].
func (e *Engine) Jitter(d Time, frac float64) Time {
	if frac <= 0 || d <= 0 {
		return d
	}
	f := 1 + (e.rng.Float64()*2-1)*frac
	if f < 0 {
		f = 0
	}
	return Time(f * float64(d))
}

// Seconds converts a float count of seconds to a virtual duration.
func Seconds(s float64) Time { return Time(s * float64(time.Second)) }

// ToSeconds converts a virtual duration to float seconds.
func ToSeconds(t Time) float64 { return float64(t) / float64(time.Second) }

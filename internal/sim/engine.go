// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock, a cancellable timer heap, a seeded random source, and
// small event-driven concurrency primitives (token pools and FIFO queues)
// used by the n-tier server models.
//
// The engine is single-threaded by design. All simulated activity is
// expressed as callbacks scheduled at virtual times; two events scheduled
// for the same instant fire in schedule order, so a run with a fixed seed
// is exactly reproducible. Distinct engines share no state, so many
// engines may run concurrently on separate goroutines.
package sim

import (
	"fmt"
	"math/rand/v2"
	"time"
)

// Time is a virtual timestamp measured from the start of the simulation.
// It reuses time.Duration so call sites can write 50*time.Millisecond.
type Time = time.Duration

// timerNode is one heap entry. Nodes are owned by the engine and recycled
// through a per-engine free list once fired or stopped: a paper-scale run
// schedules millions of events but keeps only a few hundred pending, so
// recycling removes nearly every per-event allocation. The generation
// counter invalidates external handles when a node is retired.
type timerNode struct {
	at    Time
	seq   uint64
	index int // position in the heap, -1 once fired or stopped
	gen   uint64
	fn    func()
}

// Timer is a generation-checked handle to a scheduled event, returned by
// Engine.Schedule and Engine.At. The zero value is an empty handle:
// Stopped reports true and Stop/Reschedule report false. Handles are
// small values, safe to copy and compare.
//
// Once a timer fires or is stopped, its node returns to the engine's
// free list and may back a later timer; the generation check makes every
// outstanding handle to the retired timer permanently dead, so holding a
// stale handle can never stop, move, or observe the recycled node's new
// occupant.
type Timer struct {
	n   *timerNode
	gen uint64
}

// When reports the virtual time the timer is set to fire at, or zero if
// the timer already fired or was stopped.
func (t Timer) When() Time {
	if t.Stopped() {
		return 0
	}
	return t.n.at
}

// Stopped reports whether the timer has fired or been stopped (true for
// the zero handle).
func (t Timer) Stopped() bool { return t.n == nil || t.gen != t.n.gen || t.n.index == -1 }

// Engine is a discrete-event simulator. The zero value is not ready for
// use; construct one with NewEngine.
type Engine struct {
	now    Time
	heap   []*timerNode
	free   []*timerNode
	seq    uint64
	rng    *rand.Rand
	fired  uint64
	halted bool
}

// NewEngine returns an engine whose clock starts at zero and whose random
// source is a PCG seeded with the two given words. The same seeds replay
// the same run.
func NewEngine(seed1, seed2 uint64) *Engine {
	return &Engine{rng: rand.New(rand.NewPCG(seed1, seed2))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Fired reports how many events have been dispatched so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many timers are currently scheduled.
func (e *Engine) Pending() int { return len(e.heap) }

// Schedule arranges for fn to run after delay of virtual time. A negative
// delay is treated as zero. The returned timer may be stopped before it
// fires.
func (e *Engine) Schedule(delay Time, fn func()) Timer {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At arranges for fn to run at virtual time t. Times in the past are
// clamped to now.
func (e *Engine) At(t Time, fn func()) Timer {
	if fn == nil {
		panic("sim: At called with nil function")
	}
	if t < e.now {
		t = e.now
	}
	e.seq++
	n := e.alloc()
	n.at = t
	n.seq = e.seq
	n.fn = fn
	e.push(n)
	return Timer{n: n, gen: n.gen}
}

// Stop cancels a scheduled timer. It reports whether the timer was still
// pending (false if it had already fired or been stopped, and false for
// the zero handle).
func (e *Engine) Stop(t Timer) bool {
	if t.Stopped() {
		return false
	}
	e.remove(t.n.index)
	e.recycle(t.n)
	return true
}

// Reschedule moves a pending timer to fire at now+delay. It reports
// whether the timer was still pending and thus moved.
func (e *Engine) Reschedule(t Timer, delay Time) bool {
	if t.Stopped() {
		return false
	}
	if delay < 0 {
		delay = 0
	}
	n := t.n
	n.at = e.now + delay
	e.seq++
	n.seq = e.seq
	if !e.down(n.index) {
		e.up(n.index)
	}
	return true
}

// Step dispatches the next pending event, advancing the clock to its
// timestamp. It reports false when no events remain or the engine has
// been halted.
func (e *Engine) Step() bool {
	if e.halted || len(e.heap) == 0 {
		return false
	}
	n := e.popMin()
	e.now = n.at
	fn := n.fn
	e.recycle(n)
	e.fired++
	fn()
	return true
}

// Run dispatches events until the clock would pass until, then sets the
// clock to exactly until. Events scheduled at until itself are dispatched.
func (e *Engine) Run(until Time) {
	for !e.halted && len(e.heap) > 0 && e.heap[0].at <= until {
		e.Step()
	}
	if e.now < until {
		e.now = until
	}
}

// RunAll dispatches events until none remain or maxEvents have fired.
// It returns an error if the event budget is exhausted, which usually
// indicates a self-rescheduling loop that was not shut down.
func (e *Engine) RunAll(maxEvents uint64) error {
	start := e.fired
	for e.Step() {
		if e.fired-start >= maxEvents {
			return fmt.Errorf("sim: event budget of %d exhausted at t=%v with %d timers pending",
				maxEvents, e.now, len(e.heap))
		}
	}
	return nil
}

// Halt stops the engine: Step and Run become no-ops. Pending timers are
// kept so callers can inspect them.
func (e *Engine) Halt() { e.halted = true }

// Halted reports whether Halt has been called.
func (e *Engine) Halted() bool { return e.halted }

// alloc pops a retired node from the free list, or makes a new one. The
// free-list order is deterministic (LIFO), preserving exact replay.
func (e *Engine) alloc() *timerNode {
	if k := len(e.free) - 1; k >= 0 {
		n := e.free[k]
		e.free[k] = nil
		e.free = e.free[:k]
		return n
	}
	return &timerNode{}
}

// recycle retires a fired or stopped node: bumping the generation kills
// every outstanding handle before the node re-enters circulation.
func (e *Engine) recycle(n *timerNode) {
	n.fn = nil
	n.index = -1
	n.gen++
	e.free = append(e.free, n)
}

// The heap below is a hand-inlined binary min-heap ordered by (at, seq),
// so same-instant events fire in schedule order. Inlining (instead of
// container/heap) removes the interface dispatch on every sift step in
// the engine's hottest loop.

func nodeLess(a, b *timerNode) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) push(n *timerNode) {
	n.index = len(e.heap)
	e.heap = append(e.heap, n)
	e.up(n.index)
}

func (e *Engine) popMin() *timerNode {
	n := e.heap[0]
	last := len(e.heap) - 1
	if last > 0 {
		e.heap[0] = e.heap[last]
		e.heap[0].index = 0
	}
	e.heap[last] = nil
	e.heap = e.heap[:last]
	if last > 1 {
		e.down(0)
	}
	n.index = -1
	return n
}

// remove deletes the node at heap index i.
func (e *Engine) remove(i int) {
	last := len(e.heap) - 1
	if i != last {
		e.heap[i], e.heap[last] = e.heap[last], e.heap[i]
		e.heap[i].index = i
	}
	e.heap[last] = nil
	e.heap = e.heap[:last]
	if i != last {
		if !e.down(i) {
			e.up(i)
		}
	}
}

func (e *Engine) up(i int) {
	n := e.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		p := e.heap[parent]
		if !nodeLess(n, p) {
			break
		}
		e.heap[i] = p
		p.index = i
		i = parent
	}
	e.heap[i] = n
	n.index = i
}

// down sifts the node at i toward the leaves and reports whether it moved.
func (e *Engine) down(i0 int) bool {
	n := e.heap[i0]
	i := i0
	size := len(e.heap)
	for {
		left := 2*i + 1
		if left >= size {
			break
		}
		best := left
		if right := left + 1; right < size && nodeLess(e.heap[right], e.heap[left]) {
			best = right
		}
		c := e.heap[best]
		if !nodeLess(c, n) {
			break
		}
		e.heap[i] = c
		c.index = i
		i = best
	}
	e.heap[i] = n
	n.index = i
	return i > i0
}

// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock, a cancellable timer heap, a seeded random source, and
// small event-driven concurrency primitives (token pools and FIFO queues)
// used by the n-tier server models.
//
// The engine is single-threaded by design. All simulated activity is
// expressed as callbacks scheduled at virtual times; two events scheduled
// for the same instant fire in schedule order, so a run with a fixed seed
// is exactly reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand/v2"
	"time"
)

// Time is a virtual timestamp measured from the start of the simulation.
// It reuses time.Duration so call sites can write 50*time.Millisecond.
type Time = time.Duration

// Timer is a handle to a scheduled event. The zero value is not useful;
// timers are created by Engine.Schedule and Engine.At.
type Timer struct {
	at    Time
	seq   uint64
	index int // position in the heap, -1 once fired or stopped
	fn    func()
}

// When reports the virtual time the timer is set to fire at.
func (t *Timer) When() Time { return t.at }

// Stopped reports whether the timer has fired or been stopped.
func (t *Timer) Stopped() bool { return t.index == -1 }

// Engine is a discrete-event simulator. The zero value is not ready for
// use; construct one with NewEngine.
type Engine struct {
	now    Time
	heap   timerHeap
	seq    uint64
	rng    *rand.Rand
	fired  uint64
	halted bool
}

// NewEngine returns an engine whose clock starts at zero and whose random
// source is a PCG seeded with the two given words. The same seeds replay
// the same run.
func NewEngine(seed1, seed2 uint64) *Engine {
	return &Engine{rng: rand.New(rand.NewPCG(seed1, seed2))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Fired reports how many events have been dispatched so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many timers are currently scheduled.
func (e *Engine) Pending() int { return len(e.heap) }

// Schedule arranges for fn to run after delay of virtual time. A negative
// delay is treated as zero. The returned timer may be stopped before it
// fires.
func (e *Engine) Schedule(delay Time, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At arranges for fn to run at virtual time t. Times in the past are
// clamped to now.
func (e *Engine) At(t Time, fn func()) *Timer {
	if fn == nil {
		panic("sim: At called with nil function")
	}
	if t < e.now {
		t = e.now
	}
	e.seq++
	tm := &Timer{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.heap, tm)
	return tm
}

// Stop cancels a scheduled timer. It reports whether the timer was still
// pending (false if it had already fired or been stopped).
func (e *Engine) Stop(t *Timer) bool {
	if t == nil || t.index == -1 {
		return false
	}
	heap.Remove(&e.heap, t.index)
	t.index = -1
	t.fn = nil
	return true
}

// Reschedule moves a pending timer to fire at now+delay. It reports
// whether the timer was still pending and thus moved.
func (e *Engine) Reschedule(t *Timer, delay Time) bool {
	if t == nil || t.index == -1 {
		return false
	}
	if delay < 0 {
		delay = 0
	}
	t.at = e.now + delay
	e.seq++
	t.seq = e.seq
	heap.Fix(&e.heap, t.index)
	return true
}

// Step dispatches the next pending event, advancing the clock to its
// timestamp. It reports false when no events remain or the engine has
// been halted.
func (e *Engine) Step() bool {
	if e.halted || len(e.heap) == 0 {
		return false
	}
	tm := heap.Pop(&e.heap).(*Timer)
	tm.index = -1
	e.now = tm.at
	fn := tm.fn
	tm.fn = nil
	e.fired++
	fn()
	return true
}

// Run dispatches events until the clock would pass until, then sets the
// clock to exactly until. Events scheduled at until itself are dispatched.
func (e *Engine) Run(until Time) {
	for !e.halted && len(e.heap) > 0 && e.heap[0].at <= until {
		e.Step()
	}
	if e.now < until {
		e.now = until
	}
}

// RunAll dispatches events until none remain or maxEvents have fired.
// It returns an error if the event budget is exhausted, which usually
// indicates a self-rescheduling loop that was not shut down.
func (e *Engine) RunAll(maxEvents uint64) error {
	start := e.fired
	for e.Step() {
		if e.fired-start >= maxEvents {
			return fmt.Errorf("sim: event budget of %d exhausted at t=%v with %d timers pending",
				maxEvents, e.now, len(e.heap))
		}
	}
	return nil
}

// Halt stops the engine: Step and Run become no-ops. Pending timers are
// kept so callers can inspect them.
func (e *Engine) Halt() { e.halted = true }

// Halted reports whether Halt has been called.
func (e *Engine) Halted() bool { return e.halted }

// timerHeap is a min-heap ordered by (at, seq) so same-instant events fire
// in schedule order.
type timerHeap []*Timer

func (h timerHeap) Len() int { return len(h) }

func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *timerHeap) Push(x any) {
	tm := x.(*Timer)
	tm.index = len(*h)
	*h = append(*h, tm)
}

func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	tm := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return tm
}

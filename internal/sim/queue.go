package sim

// FIFO is an unbounded first-in first-out queue backed by a growable ring
// buffer. The zero value is an empty queue ready for use.
type FIFO[T any] struct {
	buf  []T
	head int
	n    int
}

// Len reports the number of queued elements.
func (q *FIFO[T]) Len() int { return q.n }

// Push appends v to the back of the queue.
func (q *FIFO[T]) Push(v T) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = v
	q.n++
}

// Pop removes and returns the front element. The second result is false
// when the queue is empty.
func (q *FIFO[T]) Pop() (T, bool) {
	var zero T
	if q.n == 0 {
		return zero, false
	}
	v := q.buf[q.head]
	q.buf[q.head] = zero
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return v, true
}

// Peek returns the front element without removing it.
func (q *FIFO[T]) Peek() (T, bool) {
	var zero T
	if q.n == 0 {
		return zero, false
	}
	return q.buf[q.head], true
}

// Clear drops all queued elements.
func (q *FIFO[T]) Clear() {
	var zero T
	for i := 0; i < q.n; i++ {
		q.buf[(q.head+i)%len(q.buf)] = zero
	}
	q.head = 0
	q.n = 0
}

func (q *FIFO[T]) grow() {
	size := 2 * len(q.buf)
	if size == 0 {
		size = 8
	}
	buf := make([]T, size)
	for i := 0; i < q.n; i++ {
		buf[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = buf
	q.head = 0
}

// Pool is an event-driven counting semaphore: a fixed number of tokens
// with a FIFO of waiters that are granted tokens as they free. It models
// thread pools and connection pools in virtual time. The zero value has
// zero capacity; construct with NewPool.
type Pool struct {
	cap     int
	inUse   int
	waiters FIFO[func()]
}

// NewPool returns a pool with the given token capacity.
func NewPool(capacity int) *Pool {
	if capacity < 0 {
		capacity = 0
	}
	return &Pool{cap: capacity}
}

// Cap returns the pool capacity.
func (p *Pool) Cap() int { return p.cap }

// InUse reports how many tokens are currently held.
func (p *Pool) InUse() int { return p.inUse }

// Free reports how many tokens are available right now.
func (p *Pool) Free() int { return p.cap - p.inUse }

// Waiting reports how many acquisitions are queued.
func (p *Pool) Waiting() int { return p.waiters.Len() }

// TryAcquire takes a token if one is free, reporting whether it did.
func (p *Pool) TryAcquire() bool {
	if p.inUse < p.cap {
		p.inUse++
		return true
	}
	return false
}

// Acquire takes a token, calling grant immediately if one is free and
// otherwise queueing grant to run when a token is released. Grant runs
// with the token already held.
func (p *Pool) Acquire(grant func()) {
	if p.TryAcquire() {
		grant()
		return
	}
	p.waiters.Push(grant)
}

// Release returns a token. If waiters are queued, the front waiter is
// granted the token synchronously.
func (p *Pool) Release() {
	if p.inUse <= 0 {
		panic("sim: Pool.Release without a held token")
	}
	if grant, ok := p.waiters.Pop(); ok {
		// Token passes directly to the waiter; inUse is unchanged.
		grant()
		return
	}
	p.inUse--
}

// Resize changes the pool capacity. Growing the pool grants tokens to
// queued waiters; shrinking lets in-use tokens drain naturally.
func (p *Pool) Resize(capacity int) {
	if capacity < 0 {
		capacity = 0
	}
	p.cap = capacity
	for p.inUse < p.cap {
		grant, ok := p.waiters.Pop()
		if !ok {
			return
		}
		p.inUse++
		grant()
	}
}

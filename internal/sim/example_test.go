package sim_test

import (
	"fmt"
	"time"

	"millibalance/internal/sim"
)

func ExampleEngine() {
	eng := sim.NewEngine(1, 2)
	eng.Schedule(100*time.Millisecond, func() {
		fmt.Println("fired at", eng.Now())
	})
	eng.Run(time.Second)
	fmt.Println("clock:", eng.Now())
	// Output:
	// fired at 100ms
	// clock: 1s
}

func ExamplePool() {
	// A two-token pool modelling a tiny connection pool.
	p := sim.NewPool(2)
	p.Acquire(func() { fmt.Println("conn 1 granted") })
	p.Acquire(func() { fmt.Println("conn 2 granted") })
	p.Acquire(func() { fmt.Println("conn 3 granted (after a release)") })
	fmt.Println("waiting:", p.Waiting())
	p.Release()
	// Output:
	// conn 1 granted
	// conn 2 granted
	// waiting: 1
	// conn 3 granted (after a release)
}

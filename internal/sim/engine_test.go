package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine(1, 2)
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestScheduleRunsInTimeOrder(t *testing.T) {
	e := NewEngine(1, 2)
	var got []int
	e.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	e.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	e.Run(time.Second)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSameInstantFiresInScheduleOrder(t *testing.T) {
	e := NewEngine(1, 2)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5*time.Millisecond, func() { got = append(got, i) })
	}
	e.Run(time.Second)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant order broken: got %v", got)
		}
	}
}

func TestClockAdvancesToEventTime(t *testing.T) {
	e := NewEngine(1, 2)
	var at Time
	e.Schedule(42*time.Millisecond, func() { at = e.Now() })
	e.Run(time.Second)
	if at != 42*time.Millisecond {
		t.Fatalf("event saw clock %v, want 42ms", at)
	}
	if e.Now() != time.Second {
		t.Fatalf("Run left clock at %v, want 1s", e.Now())
	}
}

func TestRunDispatchesEventsAtBoundary(t *testing.T) {
	e := NewEngine(1, 2)
	fired := false
	e.Schedule(time.Second, func() { fired = true })
	e.Run(time.Second)
	if !fired {
		t.Fatal("event at the Run boundary did not fire")
	}
}

func TestRunDoesNotPassBoundary(t *testing.T) {
	e := NewEngine(1, 2)
	fired := false
	e.Schedule(time.Second+1, func() { fired = true })
	e.Run(time.Second)
	if fired {
		t.Fatal("event after the Run boundary fired early")
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
}

func TestNegativeDelayClampedToNow(t *testing.T) {
	e := NewEngine(1, 2)
	var at Time
	e.Schedule(10*time.Millisecond, func() {
		e.Schedule(-5*time.Millisecond, func() { at = e.Now() })
	})
	e.Run(time.Second)
	if at != 10*time.Millisecond {
		t.Fatalf("clamped event fired at %v, want 10ms", at)
	}
}

func TestStopPreventsFiring(t *testing.T) {
	e := NewEngine(1, 2)
	fired := false
	tm := e.Schedule(10*time.Millisecond, func() { fired = true })
	if !e.Stop(tm) {
		t.Fatal("Stop returned false for a pending timer")
	}
	if e.Stop(tm) {
		t.Fatal("second Stop returned true")
	}
	e.Run(time.Second)
	if fired {
		t.Fatal("stopped timer fired")
	}
	if !tm.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
}

func TestStopZeroTimer(t *testing.T) {
	e := NewEngine(1, 2)
	var zero Timer
	if !zero.Stopped() {
		t.Fatal("zero Timer not Stopped")
	}
	if e.Stop(zero) {
		t.Fatal("Stop(zero) returned true")
	}
	if e.Reschedule(zero, time.Millisecond) {
		t.Fatal("Reschedule(zero) returned true")
	}
}

func TestStopMiddleOfHeapKeepsOrder(t *testing.T) {
	e := NewEngine(1, 2)
	var got []int
	var timers []Timer
	for i := 0; i < 20; i++ {
		i := i
		timers = append(timers, e.Schedule(Time(i)*time.Millisecond, func() { got = append(got, i) }))
	}
	// Stop every third timer.
	for i := 0; i < 20; i += 3 {
		e.Stop(timers[i])
	}
	e.Run(time.Second)
	prev := -1
	for _, v := range got {
		if v%3 == 0 {
			t.Fatalf("stopped timer %d fired", v)
		}
		if v <= prev {
			t.Fatalf("out of order after removals: %v", got)
		}
		prev = v
	}
}

func TestRescheduleMovesTimer(t *testing.T) {
	e := NewEngine(1, 2)
	var at Time
	tm := e.Schedule(10*time.Millisecond, func() { at = e.Now() })
	if !e.Reschedule(tm, 50*time.Millisecond) {
		t.Fatal("Reschedule returned false")
	}
	e.Run(time.Second)
	if at != 50*time.Millisecond {
		t.Fatalf("rescheduled timer fired at %v, want 50ms", at)
	}
}

func TestRescheduleFiredTimerFails(t *testing.T) {
	e := NewEngine(1, 2)
	tm := e.Schedule(time.Millisecond, func() {})
	e.Run(time.Second)
	if e.Reschedule(tm, time.Millisecond) {
		t.Fatal("Reschedule of a fired timer returned true")
	}
}

func TestEventsMayScheduleMoreEvents(t *testing.T) {
	e := NewEngine(1, 2)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			e.Schedule(time.Millisecond, tick)
		}
	}
	e.Schedule(0, tick)
	e.Run(time.Second)
	if count != 100 {
		t.Fatalf("chained events fired %d times, want 100", count)
	}
}

func TestRunAllBudget(t *testing.T) {
	e := NewEngine(1, 2)
	var tick func()
	tick = func() { e.Schedule(time.Millisecond, tick) }
	e.Schedule(0, tick)
	if err := e.RunAll(1000); err == nil {
		t.Fatal("RunAll did not report budget exhaustion for a self-rescheduling loop")
	}
}

func TestRunAllCompletes(t *testing.T) {
	e := NewEngine(1, 2)
	n := 0
	for i := 0; i < 50; i++ {
		e.Schedule(Time(i)*time.Millisecond, func() { n++ })
	}
	if err := e.RunAll(1000); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if n != 50 {
		t.Fatalf("fired %d, want 50", n)
	}
}

func TestHaltStopsDispatch(t *testing.T) {
	e := NewEngine(1, 2)
	n := 0
	for i := 0; i < 10; i++ {
		e.Schedule(Time(i)*time.Millisecond, func() {
			n++
			if n == 3 {
				e.Halt()
			}
		})
	}
	e.Run(time.Second)
	if n != 3 {
		t.Fatalf("fired %d events after Halt at 3", n)
	}
	if !e.Halted() {
		t.Fatal("Halted() = false")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []Time {
		e := NewEngine(7, 11)
		var stamps []Time
		var tick func()
		n := 0
		tick = func() {
			stamps = append(stamps, e.Now())
			n++
			if n < 200 {
				e.Schedule(e.Exponential(3*time.Millisecond), tick)
			}
		}
		e.Schedule(0, tick)
		e.Run(10 * time.Second)
		return stamps
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestFiredCounter(t *testing.T) {
	e := NewEngine(1, 2)
	for i := 0; i < 7; i++ {
		e.Schedule(Time(i), func() {})
	}
	e.Run(time.Second)
	if e.Fired() != 7 {
		t.Fatalf("Fired() = %d, want 7", e.Fired())
	}
}

func TestAtNilFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At(nil) did not panic")
		}
	}()
	e := NewEngine(1, 2)
	e.At(0, nil)
}

// Property: regardless of the insertion order of timers, they always fire
// in non-decreasing time order.
func TestQuickHeapOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine(3, 4)
		var fired []Time
		for _, d := range delays {
			e.Schedule(Time(d)*time.Microsecond, func() { fired = append(fired, e.Now()) })
		}
		e.Run(time.Hour)
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: stopping a random subset never disturbs the firing order of
// the remainder and exactly the non-stopped timers fire.
func TestQuickHeapRemoval(t *testing.T) {
	f := func(delays []uint16, stopMask []bool, seed uint64) bool {
		e := NewEngine(seed, seed^0x9e3779b9)
		type rec struct {
			id      int
			stopped bool
		}
		var fired []int
		recs := make([]rec, len(delays))
		timers := make([]Timer, len(delays))
		for i, d := range delays {
			i := i
			recs[i] = rec{id: i}
			timers[i] = e.Schedule(Time(d)*time.Microsecond, func() { fired = append(fired, i) })
		}
		for i := range timers {
			if i < len(stopMask) && stopMask[i] {
				recs[i].stopped = true
				e.Stop(timers[i])
			}
		}
		e.Run(time.Hour)
		want := 0
		for _, r := range recs {
			if !r.stopped {
				want++
			}
		}
		if len(fired) != want {
			return false
		}
		for _, id := range fired {
			if recs[id].stopped {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRandIsSeeded(t *testing.T) {
	a := NewEngine(5, 6).Rand()
	b := NewEngine(5, 6).Rand()
	c := NewEngine(5, 7).Rand()
	differs := false
	for i := 0; i < 100; i++ {
		av := a.Uint64()
		if av != b.Uint64() {
			t.Fatal("same seeds produced different streams")
		}
		if av != c.Uint64() {
			differs = true
		}
	}
	if !differs {
		t.Fatal("different seeds produced identical streams")
	}
}

package sim

import (
	"math"
	"testing"
	"time"
)

func TestExponentialMean(t *testing.T) {
	e := NewEngine(1, 2)
	const n = 200000
	mean := 5 * time.Millisecond
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(e.Exponential(mean))
	}
	got := sum / n
	if math.Abs(got-float64(mean)) > 0.03*float64(mean) {
		t.Fatalf("sample mean %v, want ~%v", Time(got), mean)
	}
}

func TestExponentialNonPositiveMean(t *testing.T) {
	e := NewEngine(1, 2)
	if d := e.Exponential(0); d != 0 {
		t.Fatalf("Exponential(0) = %v, want 0", d)
	}
	if d := e.Exponential(-time.Second); d != 0 {
		t.Fatalf("Exponential(-1s) = %v, want 0", d)
	}
}

func TestUniformRange(t *testing.T) {
	e := NewEngine(1, 2)
	lo, hi := 2*time.Millisecond, 9*time.Millisecond
	for i := 0; i < 10000; i++ {
		d := e.Uniform(lo, hi)
		if d < lo || d >= hi {
			t.Fatalf("Uniform out of range: %v", d)
		}
	}
}

func TestUniformDegenerate(t *testing.T) {
	e := NewEngine(1, 2)
	if d := e.Uniform(5, 5); d != 5 {
		t.Fatalf("Uniform(5,5) = %v, want 5", d)
	}
	if d := e.Uniform(9, 3); d != 9 {
		t.Fatalf("Uniform(9,3) = %v, want lo", d)
	}
}

func TestNormalTruncatedAtZero(t *testing.T) {
	e := NewEngine(1, 2)
	for i := 0; i < 10000; i++ {
		if d := e.Normal(time.Millisecond, 10*time.Millisecond); d < 0 {
			t.Fatalf("Normal produced negative duration %v", d)
		}
	}
}

func TestNormalMean(t *testing.T) {
	e := NewEngine(1, 2)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(e.Normal(20*time.Millisecond, 2*time.Millisecond))
	}
	got := sum / n
	want := float64(20 * time.Millisecond)
	if math.Abs(got-want) > 0.02*want {
		t.Fatalf("sample mean %v, want ~20ms", Time(got))
	}
}

func TestParetoBounds(t *testing.T) {
	e := NewEngine(1, 2)
	xm, maxVal := time.Millisecond, 100*time.Millisecond
	for i := 0; i < 10000; i++ {
		d := e.Pareto(xm, 1.5, maxVal)
		if d < xm || d > maxVal {
			t.Fatalf("Pareto out of [xm, max]: %v", d)
		}
	}
}

func TestParetoDegenerateShape(t *testing.T) {
	e := NewEngine(1, 2)
	if d := e.Pareto(time.Millisecond, 0, time.Second); d != time.Millisecond {
		t.Fatalf("Pareto with alpha=0 = %v, want xm", d)
	}
}

func TestBernoulliEdges(t *testing.T) {
	e := NewEngine(1, 2)
	for i := 0; i < 100; i++ {
		if e.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !e.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	e := NewEngine(1, 2)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if e.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %.3f", rate)
	}
}

func TestPickWeightedProportions(t *testing.T) {
	e := NewEngine(1, 2)
	weights := []float64{1, 2, 0, 7}
	counts := make([]int, len(weights))
	const n = 100000
	for i := 0; i < n; i++ {
		counts[e.PickWeighted(weights)]++
	}
	if counts[2] != 0 {
		t.Fatalf("zero-weight index picked %d times", counts[2])
	}
	for i, w := range weights {
		if w == 0 {
			continue
		}
		got := float64(counts[i]) / n
		want := w / 10
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("index %d frequency %.3f, want %.3f", i, got, want)
		}
	}
}

func TestPickWeightedAllZero(t *testing.T) {
	e := NewEngine(1, 2)
	if i := e.PickWeighted([]float64{0, 0, 0}); i != 0 {
		t.Fatalf("all-zero weights picked %d, want 0", i)
	}
}

func TestPickWeightedNegativeIgnored(t *testing.T) {
	e := NewEngine(1, 2)
	for i := 0; i < 1000; i++ {
		if got := e.PickWeighted([]float64{-5, 1, -2}); got != 1 {
			t.Fatalf("negative weight index picked: %d", got)
		}
	}
}

func TestJitterBounds(t *testing.T) {
	e := NewEngine(1, 2)
	d := 100 * time.Millisecond
	for i := 0; i < 10000; i++ {
		j := e.Jitter(d, 0.2)
		if j < 80*time.Millisecond || j > 120*time.Millisecond {
			t.Fatalf("Jitter out of ±20%%: %v", j)
		}
	}
	if j := e.Jitter(d, 0); j != d {
		t.Fatalf("Jitter with frac=0 changed value: %v", j)
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	if Seconds(1.5) != 1500*time.Millisecond {
		t.Fatalf("Seconds(1.5) = %v", Seconds(1.5))
	}
	if s := ToSeconds(250 * time.Millisecond); s != 0.25 {
		t.Fatalf("ToSeconds = %v", s)
	}
}

func TestLogNormalPositive(t *testing.T) {
	e := NewEngine(1, 2)
	for i := 0; i < 10000; i++ {
		if d := e.LogNormal(13, 0.5); d <= 0 {
			t.Fatalf("LogNormal produced non-positive %v", d)
		}
	}
}

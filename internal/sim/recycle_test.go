package sim

import (
	"testing"
	"time"
)

// The engine recycles fired and stopped timer nodes through a free list.
// These tests pin the safety contract of stale handles: once a timer has
// fired or been stopped, every outstanding handle to it is permanently
// dead, even after the underlying node is reused by a later timer.

// TestRecycledHandleReportsStopped: a handle to a fired timer keeps
// reporting Stopped() == true after its node backs a new pending timer.
func TestRecycledHandleReportsStopped(t *testing.T) {
	e := NewEngine(1, 2)
	old := e.Schedule(time.Millisecond, func() {})
	e.Run(time.Second) // old fires; its node returns to the free list

	if !old.Stopped() {
		t.Fatal("fired timer's handle does not report Stopped")
	}
	// The next schedule reuses the recycled node.
	fresh := e.Schedule(time.Millisecond, func() {})
	if fresh.Stopped() {
		t.Fatal("fresh timer reports Stopped")
	}
	if !old.Stopped() {
		t.Fatal("stale handle came back to life when its node was reused")
	}
	if old == fresh {
		t.Fatal("stale and fresh handles compare equal")
	}
	if old.When() != 0 {
		t.Fatalf("stale handle When() = %v, want 0", old.When())
	}
}

// TestStaleHandleCannotStopRecycledNode: stopping through a stale handle
// must not cancel the new timer occupying the recycled node — the
// "cannot fire twice / cannot be stopped twice" guarantee.
func TestStaleHandleCannotStopRecycledNode(t *testing.T) {
	e := NewEngine(1, 2)
	stale := e.Schedule(time.Millisecond, func() {})
	if !e.Stop(stale) {
		t.Fatal("Stop of pending timer returned false")
	}

	fired := false
	fresh := e.Schedule(time.Millisecond, func() { fired = true })
	if e.Stop(stale) {
		t.Fatal("Stop through a stale handle returned true")
	}
	if e.Reschedule(stale, time.Hour) {
		t.Fatal("Reschedule through a stale handle returned true")
	}
	if fresh.Stopped() {
		t.Fatal("stale Stop/Reschedule killed the recycled node's new timer")
	}
	e.Run(time.Second)
	if !fired {
		t.Fatal("new timer on the recycled node never fired")
	}
}

// TestRecycledNodeCannotFireTwice: a callback scheduled once fires once,
// even when its node is recycled into a timer at the same instant from
// within another callback.
func TestRecycledNodeCannotFireTwice(t *testing.T) {
	e := NewEngine(1, 2)
	count := 0
	e.Schedule(time.Millisecond, func() {
		// This node is already recycled while its callback runs; schedule
		// at the same instant to reuse it immediately.
		e.Schedule(0, func() {})
	})
	e.Schedule(time.Millisecond, func() { count++ })
	e.Run(time.Second)
	if count != 1 {
		t.Fatalf("callback fired %d times, want 1", count)
	}
}

// TestFreeListReuse: after a schedule/fire churn far larger than the
// pending population, the engine holds only a bounded set of nodes.
func TestFreeListReuse(t *testing.T) {
	e := NewEngine(1, 2)
	fn := func() {}
	for i := 0; i < 10000; i++ {
		e.Schedule(time.Millisecond, fn)
		if !e.Step() {
			t.Fatal("Step returned false with a pending timer")
		}
	}
	if got := len(e.free); got != 1 {
		t.Fatalf("free list holds %d nodes after serial churn, want 1", got)
	}
	if e.Fired() != 10000 {
		t.Fatalf("fired = %d", e.Fired())
	}
}

package sim

import (
	"testing"
	"time"
)

// BenchmarkEngineScheduleFire measures the engine's core loop: schedule
// one event and dispatch it. The callback is hoisted out of the loop so
// the measurement isolates the engine's own per-event cost (timer
// bookkeeping, heap traffic) from the caller's closure allocation.
func BenchmarkEngineScheduleFire(b *testing.B) {
	e := NewEngine(1, 2)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(time.Millisecond, fn)
		e.Step()
	}
}

// BenchmarkEngineScheduleFireDepth measures schedule+fire with a standing
// population of pending timers, so heap sift costs at realistic depths
// are included (a paper-scale run keeps hundreds of timers pending).
func BenchmarkEngineScheduleFireDepth(b *testing.B) {
	const depth = 512
	e := NewEngine(1, 2)
	fn := func() {}
	for i := 0; i < depth; i++ {
		e.Schedule(time.Duration(i+1)*time.Second, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(time.Millisecond, fn)
		e.Step()
	}
}

// BenchmarkEngineTimerReuse measures the schedule/stop cycle that the
// balancer's busy/error recovery timers and the CPU model's stall timer
// exercise constantly: the timer never fires, it is cancelled and
// replaced.
func BenchmarkEngineTimerReuse(b *testing.B) {
	e := NewEngine(1, 2)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm := e.Schedule(time.Millisecond, fn)
		e.Stop(tm)
	}
}

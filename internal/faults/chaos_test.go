package faults_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"millibalance/internal/adapt"
	"millibalance/internal/faults"
	"millibalance/internal/httpcluster"
	"millibalance/internal/obs"
)

// Chaos matrix: every fault shape against the original-mechanism
// baseline and the remedied proxy (modified get_endpoint +
// current_load + resilience), plus the adaptive control plane for the
// paper's flagship freeze shape. The assertions are relative — the
// remedy must do no worse than the baseline on the shape's symptom —
// so the matrix is robust to scheduler noise while still failing if a
// remedy regresses.

const (
	chaosClients  = 24
	chaosLoadTime = time.Second
)

type chaosArm struct {
	stats      *httpcluster.LoadStats
	maxWorkers int
	// maxGetEndpoint is the longest time any request spent inside
	// endpoint acquisition — the blocked-worker signature: under the
	// original mechanism a poller holds its web worker for up to the
	// full acquire window.
	maxGetEndpoint time.Duration
	shed           uint64
	retries        uint64
	faultsSeen     int
}

// share is the fraction of requests at or over the threshold.
func (a chaosArm) share(th time.Duration) float64 {
	total := a.stats.Total()
	if total == 0 {
		return 0
	}
	return float64(a.stats.CountOver(th)) / float64(total)
}

func (a chaosArm) failShare() float64 {
	total := a.stats.Total()
	if total == 0 {
		return 0
	}
	return float64(a.stats.Failures()) / float64(total)
}

// runChaosArm boots a fresh 3-backend tier, injects the shape
// periodically against the first backend, and drives closed-loop load.
func runChaosArm(t *testing.T, shape, arm string) chaosArm {
	t.Helper()

	var apps []*httpcluster.AppServer
	var backends []*httpcluster.Backend
	for _, name := range []string{"app1", "app2", "app3"} {
		app, err := httpcluster.StartAppServer(httpcluster.AppServerConfig{
			Name: name, Workers: 8, ServiceTime: 5 * time.Millisecond, ResponseBytes: 512,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = app.Close() }()
		apps = append(apps, app)
		// Endpoint pools sized so two healthy backends can absorb the
		// full client population; otherwise retries exhaust the healthy
		// pools and fall back onto the faulted Busy backend.
		backends = append(backends, httpcluster.NewBackend(name, app.URL(), 16))
	}

	tr := faults.NewTransport(nil, 42)
	resil := &httpcluster.Resilience{
		AttemptTimeout: 500 * time.Millisecond,
		MaxRetries:     2,
		RetryBackoff:   2 * time.Millisecond,
		ShedAfter:      200 * time.Millisecond,
		// The fault duty cycle here is far above the 20% default budget
		// ratio; a 1:1 budget still bounds retry amplification (one hop
		// per request on average) without starving the matrix.
		RetryBudget:    1,
		RetryBudgetCap: 200,
	}
	cfg := httpcluster.ProxyConfig{
		Workers:       64,
		Transport:     tr,
		EventCapacity: 4096,
		SpanCapacity:  16384,
		LB:            httpcluster.Config{},
	}
	switch arm {
	case "original":
		cfg.Policy = httpcluster.PolicyTotalRequest
		cfg.Mechanism = httpcluster.MechanismOriginal
	case "remedy":
		cfg.Policy = httpcluster.PolicyCurrentLoad
		cfg.Mechanism = httpcluster.MechanismModified
		cfg.Resilience = resil
	case "adaptive":
		cfg.Policy = httpcluster.PolicyTotalRequest
		cfg.Mechanism = httpcluster.MechanismOriginal
		cfg.Resilience = resil
		cfg.Adapt = &adapt.Config{
			Tick:          20 * time.Millisecond,
			Window:        200 * time.Millisecond,
			ProbeInterval: 60 * time.Millisecond,
			ProbeRTBudget: time.Second,
			MaxQuarantine: 2 * time.Second,
		}
	default:
		t.Fatalf("unknown arm %q", arm)
	}
	proxy, err := httpcluster.StartProxy(cfg, backends)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = proxy.Close() }()

	inj := buildInjector(t, shape, apps[0], tr)
	inj.Arm(proxy.Events(), proxy.Epoch())
	inj.Start()
	defer inj.Stop()

	// Sample the proxy's worker occupancy for the pile-up signature.
	maxWorkers := 0
	sampleDone := make(chan struct{})
	sampleStop := make(chan struct{})
	go func() {
		defer close(sampleDone)
		for {
			select {
			case <-sampleStop:
				return
			case <-time.After(5 * time.Millisecond):
				if n := proxy.WorkersInFlight(); n > maxWorkers {
					maxWorkers = n
				}
			}
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), chaosLoadTime)
	defer cancel()
	stats := httpcluster.RunLoad(ctx, proxy.URL(), httpcluster.LoadGenConfig{
		Clients: chaosClients, ThinkTime: time.Millisecond,
	}, 100*time.Millisecond, 250*time.Millisecond)
	close(sampleStop)
	<-sampleDone

	if stats.Total() == 0 {
		t.Fatalf("%s/%s: no requests completed", shape, arm)
	}
	var maxGE time.Duration
	for _, sp := range proxy.Tracer().Spans() {
		if d := sp.Duration(obs.StageGetEndpoint); d > maxGE {
			maxGE = d
		}
	}
	return chaosArm{
		stats:          stats,
		maxWorkers:     maxWorkers,
		maxGetEndpoint: maxGE,
		shed:           proxy.Shed(),
		retries:        proxy.Retries(),
		faultsSeen:     inj.Fired(),
	}
}

// buildInjector maps a shape name onto the live tier.
func buildInjector(t *testing.T, shape string, target *httpcluster.AppServer, tr *faults.Transport) *faults.Injector {
	t.Helper()
	host := strings.TrimPrefix(target.URL(), "http://")
	sched := faults.Schedule{Kind: faults.Periodic, Interval: 250 * time.Millisecond, Duration: 150 * time.Millisecond, Seed: 7}
	switch shape {
	case "freeze":
		return faults.NewInjector(faults.Freeze{Name: target.Name(), S: target}, sched)
	case "gc_pause":
		return faults.NewInjector(faults.GCPause{Name: target.Name(), S: target}, sched)
	case "slow":
		return faults.NewInjector(faults.Slow{Name: target.Name(), D: target, Extra: 150 * time.Millisecond},
			faults.Schedule{Kind: faults.Periodic, Interval: 250 * time.Millisecond, Duration: 200 * time.Millisecond, Seed: 7})
	case "crash":
		return faults.NewInjector(faults.Crash{Name: target.Name(), R: target},
			faults.Schedule{Kind: faults.Periodic, Interval: 400 * time.Millisecond, Duration: 150 * time.Millisecond, Seed: 7})
	case "netloss":
		return faults.NewInjector(faults.NetDegrade{T: tr, Host: host, Loss: 0.9},
			faults.Schedule{Kind: faults.Periodic, Interval: 250 * time.Millisecond, Duration: 200 * time.Millisecond, Seed: 7})
	default:
		t.Fatalf("unknown shape %q", shape)
		return nil
	}
}

func TestChaosMatrix(t *testing.T) {
	if testing.Short() && testing.Verbose() {
		t.Log("short mode: freeze and crash shapes only")
	}
	shapes := []string{"freeze", "crash", "slow", "netloss", "gc_pause"}
	if testing.Short() {
		shapes = []string{"freeze", "crash"}
	}
	for _, shape := range shapes {
		shape := shape
		t.Run(shape, func(t *testing.T) {
			orig := runChaosArm(t, shape, "original")
			remedy := runChaosArm(t, shape, "remedy")

			if orig.faultsSeen == 0 || remedy.faultsSeen == 0 {
				t.Fatalf("injector idle: orig=%d remedy=%d windows", orig.faultsSeen, remedy.faultsSeen)
			}

			switch shape {
			case "freeze", "gc_pause":
				// The baseline reproduces the paper's blocked-worker
				// signature: at least one worker spends a full poll
				// interval blocked inside get_endpoint on the frozen
				// backend's exhausted pool.
				if orig.maxGetEndpoint < 100*time.Millisecond {
					t.Errorf("original blocked-worker signature absent: max get_endpoint %v, want ≥ 100ms", orig.maxGetEndpoint)
				}
				// The remedy fails fast instead of polling.
				if remedy.maxGetEndpoint >= orig.maxGetEndpoint {
					t.Errorf("remedy max get_endpoint %v ≥ original %v", remedy.maxGetEndpoint, orig.maxGetEndpoint)
				}
				// And its tail share must not exceed the baseline's:
				// fail-fast + current_load route around the freeze.
				if rs, os := remedy.share(100*time.Millisecond), orig.share(100*time.Millisecond); rs > os+0.02 {
					t.Errorf("remedy slow-share %.3f > original %.3f", rs, os)
				}
			case "slow":
				if rs, os := remedy.share(100*time.Millisecond), orig.share(100*time.Millisecond); rs > os+0.02 {
					t.Errorf("remedy slow-share %.3f > original %.3f", rs, os)
				}
			case "crash", "netloss":
				// Retries turn hard upstream failures into successes.
				rf, of := remedy.failShare(), orig.failShare()
				if rf > of+0.02 {
					t.Errorf("remedy fail-share %.3f > original %.3f", rf, of)
				}
				if rf > 0.10 {
					t.Errorf("remedy fail-share %.3f, want < 0.10 with retries", rf)
				}
				if remedy.retries == 0 {
					t.Error("remedy recorded no retries under hard failures")
				}
			}

			t.Logf("%s: original total=%d fail=%.3f slow100=%.3f maxGE=%v | remedy total=%d fail=%.3f slow100=%.3f maxGE=%v shed=%d retries=%d",
				shape, orig.stats.Total(), orig.failShare(), orig.share(100*time.Millisecond), orig.maxGetEndpoint,
				remedy.stats.Total(), remedy.failShare(), remedy.share(100*time.Millisecond), remedy.maxGetEndpoint,
				remedy.shed, remedy.retries)

			if shape == "freeze" {
				adaptive := runChaosArm(t, shape, "adaptive")
				// The control plane must remediate: its tail share stays
				// within the baseline's, and it survives the run.
				if as, os := adaptive.share(100*time.Millisecond), orig.share(100*time.Millisecond); as > os+0.05 {
					t.Errorf("adaptive slow-share %.3f > original %.3f", as, os)
				}
				t.Logf("%s: adaptive total=%d fail=%.3f slow100=%.3f maxGE=%v",
					shape, adaptive.stats.Total(), adaptive.failShare(), adaptive.share(100*time.Millisecond), adaptive.maxGetEndpoint)
			}
		})
	}
}

// TestCorrelatedFreezeSheds: when every backend freezes at once there
// is nowhere to route; the resilient proxy must shed fast instead of
// accumulating blocked workers.
func TestCorrelatedFreezeSheds(t *testing.T) {
	var apps []*httpcluster.AppServer
	var backends []*httpcluster.Backend
	var shapes faults.Correlated
	for _, name := range []string{"app1", "app2"} {
		app, err := httpcluster.StartAppServer(httpcluster.AppServerConfig{
			Name: name, Workers: 4, ServiceTime: 5 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = app.Close() }()
		apps = append(apps, app)
		backends = append(backends, httpcluster.NewBackend(name, app.URL(), 4))
		shapes = append(shapes, faults.Freeze{Name: name, S: app})
	}
	proxy, err := httpcluster.StartProxy(httpcluster.ProxyConfig{
		Workers:   8,
		Policy:    httpcluster.PolicyCurrentLoad,
		Mechanism: httpcluster.MechanismModified,
		LB:        httpcluster.Config{Sweeps: 1},
		Resilience: &httpcluster.Resilience{
			AttemptTimeout: 2 * time.Second,
			MaxRetries:     -1,
			ShedAfter:      50 * time.Millisecond,
		},
	}, backends)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = proxy.Close() }()

	inj := faults.NewInjector(shapes, faults.Schedule{Kind: faults.OneShot, Interval: 50 * time.Millisecond, Duration: 700 * time.Millisecond})
	inj.Start()
	defer inj.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 600*time.Millisecond)
	defer cancel()
	stats := httpcluster.RunLoad(ctx, proxy.URL(), httpcluster.LoadGenConfig{Clients: 16, ThinkTime: time.Millisecond})
	if stats.Total() == 0 {
		t.Fatal("no requests completed")
	}
	if proxy.Shed() == 0 {
		t.Fatal("correlated freeze produced no shedding")
	}
	if apps[0].InFlight() > 8 {
		t.Fatalf("app1 in-flight %d, want bounded by its worker pool", apps[0].InFlight())
	}
}

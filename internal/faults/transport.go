package faults

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"sync"
	"time"
)

// ErrInjectedLoss marks a request dropped by the loss fault, so tests
// and metrics can tell injected failures from real ones.
var ErrInjectedLoss = errors.New("faults: injected packet loss")

// Transport is a fault-wrapping http.RoundTripper for the proxy's
// upstream client: per-host injected latency (added before the request
// is forwarded) and probabilistic loss (the request fails without ever
// reaching the backend — the paper's dropped-packet /
// retransmission-trigger path). Hosts without an open degradation pass
// through untouched.
type Transport struct {
	// Base performs the real round trips; nil means
	// http.DefaultTransport.
	Base http.RoundTripper

	mu    sync.Mutex
	hosts map[string]netFault
	rng   *rand.Rand
}

type netFault struct {
	latency time.Duration
	loss    float64
}

// NewTransport wraps base with a deterministic seeded loss source.
func NewTransport(base http.RoundTripper, seed uint64) *Transport {
	if seed == 0 {
		seed = 0x6e6574
	}
	return &Transport{
		Base: base,
		rng:  rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
	}
}

// Degrade opens (or updates) a degradation for host: every request adds
// latency, and fails with ErrInjectedLoss with probability loss.
func (t *Transport) Degrade(host string, latency time.Duration, loss float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.hosts == nil {
		t.hosts = make(map[string]netFault)
	}
	t.hosts[host] = netFault{latency: latency, loss: loss}
}

// Clear removes the host's degradation.
func (t *Transport) Clear(host string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.hosts, host)
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	f, degraded := t.hosts[req.URL.Host]
	var drop bool
	if degraded && f.loss > 0 {
		drop = t.rng.Float64() < f.loss
	}
	t.mu.Unlock()
	if degraded && f.latency > 0 {
		timer := time.NewTimer(f.latency)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		}
	}
	if drop {
		return nil, fmt.Errorf("faults: %s: %w", req.URL.Host, ErrInjectedLoss)
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	return base.RoundTrip(req)
}

// NetDegrade is the network fault shape: for the window, requests to
// Host through T gain Latency and fail with probability Loss.
type NetDegrade struct {
	T       *Transport
	Host    string
	Latency time.Duration
	Loss    float64
}

func (n NetDegrade) Kind() string {
	if n.Loss > 0 && n.Latency <= 0 {
		return "netloss"
	}
	return "netdelay"
}

func (n NetDegrade) Target() string { return n.Host }

func (n NetDegrade) Open(d time.Duration) {
	n.T.Degrade(n.Host, n.Latency, n.Loss)
	time.AfterFunc(d, func() { n.T.Clear(n.Host) })
}

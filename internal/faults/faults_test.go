package faults

import (
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"millibalance/internal/obs"
)

// fakeStaller records stall windows.
type fakeStaller struct {
	mu    sync.Mutex
	calls []time.Duration
}

func (f *fakeStaller) Stall(d time.Duration) {
	f.mu.Lock()
	f.calls = append(f.calls, d)
	f.mu.Unlock()
}

func (f *fakeStaller) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.calls)
}

type fakeDelayer struct{ d atomic.Int64 }

func (f *fakeDelayer) SetExtraDelay(d time.Duration) { f.d.Store(int64(d)) }

type fakeRestarter struct {
	down    atomic.Bool
	crashes atomic.Int64
}

func (f *fakeRestarter) Crash() { f.down.Store(true); f.crashes.Add(1) }
func (f *fakeRestarter) Restart() error {
	f.down.Store(false)
	return nil
}

func TestPeriodicInjectorFiresAndLogs(t *testing.T) {
	st := &fakeStaller{}
	in := NewInjector(Freeze{Name: "app1", S: st}, Schedule{
		Kind: Periodic, Interval: 20 * time.Millisecond, Duration: 5 * time.Millisecond, Count: 3,
	})
	log := obs.NewEventLog(64)
	in.Arm(log, time.Now())
	in.Start()
	defer in.Stop()

	deadline := time.Now().Add(2 * time.Second)
	for in.Fired() < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := in.Fired(); got != 3 {
		t.Fatalf("fired %d windows, want 3 (Count)", got)
	}
	time.Sleep(20 * time.Millisecond) // let the fault_end timers fire
	starts := log.Kind(obs.KindFaultStart)
	ends := log.Kind(obs.KindFaultEnd)
	if len(starts) != 3 || len(ends) != 3 {
		t.Fatalf("events: %d starts / %d ends, want 3/3", len(starts), len(ends))
	}
	ev := starts[0]
	if ev.Backend != "app1" || ev.Fault != "freeze" || ev.Window != 5*time.Millisecond || ev.Source != "freeze:periodic" {
		t.Fatalf("bad start event: %+v", ev)
	}
	if st.count() != 3 {
		t.Fatalf("staller called %d times", st.count())
	}
}

func TestOneShotInjectorFiresOnce(t *testing.T) {
	st := &fakeStaller{}
	in := NewInjector(GCPause{Name: "app2", S: st}, Schedule{
		Kind: OneShot, Interval: 10 * time.Millisecond, Duration: time.Millisecond,
	})
	in.Start()
	time.Sleep(60 * time.Millisecond)
	in.Stop()
	if got := in.Fired(); got != 1 {
		t.Fatalf("one-shot fired %d times", got)
	}
	if in.Name() != "gc_pause:oneshot" {
		t.Fatalf("name %q", in.Name())
	}
}

func TestInjectorStopHaltsSchedule(t *testing.T) {
	st := &fakeStaller{}
	in := NewInjector(Freeze{Name: "a", S: st}, Schedule{
		Kind: Periodic, Interval: 10 * time.Millisecond, Duration: time.Millisecond,
	})
	in.Start()
	time.Sleep(35 * time.Millisecond)
	in.Stop()
	in.Stop() // idempotent
	fired := in.Fired()
	if fired == 0 {
		t.Fatal("injector never fired")
	}
	time.Sleep(30 * time.Millisecond)
	if got := in.Fired(); got != fired {
		t.Fatalf("injector fired after Stop: %d → %d", fired, got)
	}
}

func TestRandomScheduleIsSeededDeterministic(t *testing.T) {
	run := func(seed uint64) int {
		st := &fakeStaller{}
		in := NewInjector(Freeze{Name: "a", S: st}, Schedule{
			Kind: Random, Interval: 5 * time.Millisecond, Duration: time.Millisecond, Seed: seed, Count: 4,
		})
		in.Start()
		deadline := time.Now().Add(time.Second)
		for in.Fired() < 4 && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		in.Stop()
		return in.Fired()
	}
	if got := run(7); got != 4 {
		t.Fatalf("random schedule fired %d, want 4", got)
	}
}

func TestSlowShapeSetsAndClearsDelay(t *testing.T) {
	d := &fakeDelayer{}
	s := Slow{Name: "app1", D: d, Extra: 30 * time.Millisecond}
	s.Open(20 * time.Millisecond)
	if got := time.Duration(d.d.Load()); got != 30*time.Millisecond {
		t.Fatalf("delay during window = %v", got)
	}
	time.Sleep(60 * time.Millisecond)
	if got := time.Duration(d.d.Load()); got != 0 {
		t.Fatalf("delay after window = %v, want cleared", got)
	}
}

func TestCrashShapeCrashesAndRestarts(t *testing.T) {
	r := &fakeRestarter{}
	c := Crash{Name: "app1", R: r}
	c.Open(20 * time.Millisecond)
	if !r.down.Load() {
		t.Fatal("not crashed during window")
	}
	time.Sleep(60 * time.Millisecond)
	if r.down.Load() {
		t.Fatal("not restarted after window")
	}
}

func TestCorrelatedOpensAllShapes(t *testing.T) {
	s1, s2 := &fakeStaller{}, &fakeStaller{}
	c := Correlated{Freeze{Name: "a", S: s1}, Freeze{Name: "b", S: s2}}
	if c.Target() != "a+b" || c.Kind() != "correlated" {
		t.Fatalf("identity %s/%s", c.Kind(), c.Target())
	}
	c.Open(time.Millisecond)
	if s1.count() != 1 || s2.count() != 1 {
		t.Fatalf("opened %d/%d, want 1/1", s1.count(), s2.count())
	}
}

func TestTransportLatencyAndLoss(t *testing.T) {
	inner := roundTripFunc(func(req *http.Request) (*http.Response, error) {
		return &http.Response{StatusCode: 200, Body: http.NoBody}, nil
	})
	tr := NewTransport(inner, 1)

	req, _ := http.NewRequest(http.MethodGet, "http://10.0.0.1:8080/x", nil)

	// Untouched host passes through with no delay.
	start := time.Now()
	if _, err := tr.RoundTrip(req); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 20*time.Millisecond {
		t.Fatal("undegraded host delayed")
	}

	// Latency applies while degraded.
	tr.Degrade("10.0.0.1:8080", 30*time.Millisecond, 0)
	start = time.Now()
	if _, err := tr.RoundTrip(req); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("degraded round trip took %v, want ≥ ~30ms", elapsed)
	}

	// Full loss drops every request with the sentinel error.
	tr.Degrade("10.0.0.1:8080", 0, 1.0)
	if _, err := tr.RoundTrip(req); !errors.Is(err, ErrInjectedLoss) {
		t.Fatalf("err = %v, want ErrInjectedLoss", err)
	}

	// Clear restores pass-through.
	tr.Clear("10.0.0.1:8080")
	if _, err := tr.RoundTrip(req); err != nil {
		t.Fatalf("cleared host still failing: %v", err)
	}
}

func TestNetDegradeShape(t *testing.T) {
	tr := NewTransport(nil, 1)
	loss := NetDegrade{T: tr, Host: "h:1", Loss: 0.5}
	if loss.Kind() != "netloss" {
		t.Fatalf("kind %q", loss.Kind())
	}
	delay := NetDegrade{T: tr, Host: "h:1", Latency: 10 * time.Millisecond}
	if delay.Kind() != "netdelay" {
		t.Fatalf("kind %q", delay.Kind())
	}
	delay.Open(20 * time.Millisecond)
	tr.mu.Lock()
	_, open := tr.hosts["h:1"]
	tr.mu.Unlock()
	if !open {
		t.Fatal("degradation not open during window")
	}
	time.Sleep(60 * time.Millisecond)
	tr.mu.Lock()
	_, open = tr.hosts["h:1"]
	tr.mu.Unlock()
	if open {
		t.Fatal("degradation not cleared after window")
	}
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(req *http.Request) (*http.Response, error) { return f(req) }

func TestParseScenario(t *testing.T) {
	specs, err := ParseScenario(
		"freeze:periodic:interval=2s:duration=300ms:jitter=500ms:target=app1, " +
			"netloss:oneshot:interval=5s:duration=1s:loss=0.25:target=app2," +
			"slow:random:delay=80ms:seed=9")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("parsed %d specs", len(specs))
	}
	f := specs[0]
	if f.ShapeKind != "freeze" || f.Sched.Kind != Periodic || f.Sched.Interval != 2*time.Second ||
		f.Sched.Duration != 300*time.Millisecond || f.Sched.Jitter != 500*time.Millisecond || f.Target != "app1" {
		t.Fatalf("freeze spec %+v", f)
	}
	n := specs[1]
	if n.ShapeKind != "netloss" || n.Sched.Kind != OneShot || n.Loss != 0.25 || n.Target != "app2" {
		t.Fatalf("netloss spec %+v", n)
	}
	s := specs[2]
	if s.ShapeKind != "slow" || s.Sched.Kind != Random || s.Delay != 80*time.Millisecond || s.Sched.Seed != 9 {
		t.Fatalf("slow spec %+v", s)
	}

	for _, bad := range []string{
		"",
		"freeze",
		"warp:periodic",
		"freeze:sometimes",
		"freeze:periodic:bogus=1",
		"freeze:periodic:interval=-2s",
		"netloss:oneshot:loss=1.5",
		"freeze:periodic:duration",
	} {
		if _, err := ParseScenario(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}

func TestSpecDefaults(t *testing.T) {
	s, err := ParseSpec("slow:periodic")
	if err != nil {
		t.Fatal(err)
	}
	if s.Delay != 50*time.Millisecond || s.Sched.Interval != 500*time.Millisecond || s.Sched.Duration != 200*time.Millisecond {
		t.Fatalf("slow defaults %+v", s)
	}
	n, _ := ParseSpec("netdelay:periodic")
	if n.Latency != 100*time.Millisecond {
		t.Fatalf("netdelay default latency %v", n.Latency)
	}
	l, _ := ParseSpec("netloss:periodic")
	if l.Loss != 0.5 {
		t.Fatalf("netloss default loss %v", l.Loss)
	}
}

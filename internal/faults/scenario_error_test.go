package faults

import "testing"

// Error-path coverage for the scenario parser. TestParseScenario only
// checks that malformed specs are rejected; these tests pin the exact
// diagnostics, because the messages are what operators see when a
// -faults flag is mistyped and a vague error makes the DSL unusable.
func TestParseSpecErrorMessages(t *testing.T) {
	cases := []struct {
		spec string
		want string
	}{
		{"freeze", `faults: "freeze": want shape:schedule[:key=value]...`},
		{"warp:periodic", `faults: unknown shape "warp"`},
		{"freeze:sometimes", `faults: unknown schedule "sometimes"`},
		{"freeze:periodic:interval", `faults: "interval": want key=value`},
		{"freeze:periodic:bogus=1", `faults: unknown key "bogus" in "freeze:periodic:bogus=1"`},
		{"freeze:periodic:interval=-2s", `faults: "interval=-2s": duration -2s not positive`},
		{"freeze:periodic:duration=0s", `faults: "duration=0s": duration 0s not positive`},
		{"gc_pause:random:jitter=-5ms", `faults: "jitter=-5ms": duration -5ms not positive`},
		{"netloss:oneshot:loss=1.5", `faults: "loss=1.5": loss outside [0,1]`},
		{"netloss:oneshot:loss=-0.1", `faults: "loss=-0.1": loss outside [0,1]`},
	}
	for _, tc := range cases {
		_, err := ParseSpec(tc.spec)
		if err == nil {
			t.Errorf("ParseSpec(%q) accepted, want error %q", tc.spec, tc.want)
			continue
		}
		if err.Error() != tc.want {
			t.Errorf("ParseSpec(%q) = %q, want %q", tc.spec, err.Error(), tc.want)
		}
	}
}

func TestParseScenarioErrorMessages(t *testing.T) {
	for _, empty := range []string{"", "   ", ",", " , ,"} {
		_, err := ParseScenario(empty)
		if err == nil || err.Error() != "faults: empty scenario" {
			t.Errorf("ParseScenario(%q) err = %v, want faults: empty scenario", empty, err)
		}
	}

	// A bad spec anywhere in the list surfaces its own diagnostic, not a
	// generic scenario error.
	_, err := ParseScenario("freeze:periodic, warp:oneshot")
	if err == nil || err.Error() != `faults: unknown shape "warp"` {
		t.Errorf("ParseScenario err = %v, want unknown shape", err)
	}
}

package faults

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Scenario text format, shared by cmd/httpdemo's -faults flag and the
// chaos tooling: a comma-separated list of specs, each
//
//	shape:schedule[:key=value]...
//
// with shapes freeze | gc_pause | slow | crash | netdelay | netloss,
// schedules periodic | random | oneshot, and keys interval, duration,
// jitter, count, seed, target, delay (slow's extra service time),
// latency and loss (the network shapes). Example:
//
//	freeze:periodic:interval=2s:duration=300ms:jitter=500ms:target=app1,
//	netloss:oneshot:interval=5s:duration=1s:loss=0.5:target=app2
//
// The same vocabulary maps onto internal/mbneck's simulated injectors
// (periodic↔PeriodicStalls, random↔RandomStalls, oneshot↔Scripted), so
// one scenario description drives both substrates.

// Spec is one parsed fault specification, not yet bound to a live
// target. The caller resolves Target to a Shape (an app server or the
// proxy transport) and calls Bind.
type Spec struct {
	// ShapeKind is one of freeze, gc_pause, slow, crash, netdelay,
	// netloss.
	ShapeKind string
	// Target names the backend the fault afflicts; empty means the
	// caller's default (typically the first backend).
	Target string
	// Sched is the window arrival process.
	Sched Schedule
	// Delay is slow's extra per-request service time.
	Delay time.Duration
	// Latency and Loss parameterize netdelay / netloss.
	Latency time.Duration
	Loss    float64
}

// Bind attaches the resolved shape, producing a runnable injector.
func (s Spec) Bind(shape Shape) *Injector { return NewInjector(shape, s.Sched) }

// ParseScenario parses a comma-separated scenario string.
func ParseScenario(text string) ([]Spec, error) {
	var out []Spec
	for _, part := range strings.Split(text, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		spec, err := ParseSpec(part)
		if err != nil {
			return nil, err
		}
		out = append(out, spec)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("faults: empty scenario")
	}
	return out, nil
}

// ParseSpec parses one shape:schedule[:key=value]... spec.
func ParseSpec(text string) (Spec, error) {
	fields := strings.Split(text, ":")
	if len(fields) < 2 {
		return Spec{}, fmt.Errorf("faults: %q: want shape:schedule[:key=value]...", text)
	}
	spec := Spec{ShapeKind: fields[0]}
	switch spec.ShapeKind {
	case "freeze", "gc_pause", "slow", "crash", "netdelay", "netloss":
	default:
		return Spec{}, fmt.Errorf("faults: unknown shape %q", spec.ShapeKind)
	}
	switch fields[1] {
	case "periodic":
		spec.Sched.Kind = Periodic
	case "random":
		spec.Sched.Kind = Random
	case "oneshot":
		spec.Sched.Kind = OneShot
	default:
		return Spec{}, fmt.Errorf("faults: unknown schedule %q", fields[1])
	}
	// Shape-specific defaults; overridable below.
	spec.Sched.Interval = 500 * time.Millisecond
	spec.Sched.Duration = 200 * time.Millisecond
	switch spec.ShapeKind {
	case "slow":
		spec.Delay = 50 * time.Millisecond
	case "netdelay":
		spec.Latency = 100 * time.Millisecond
	case "netloss":
		spec.Loss = 0.5
	}
	for _, kv := range fields[2:] {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return Spec{}, fmt.Errorf("faults: %q: want key=value", kv)
		}
		var err error
		switch key {
		case "interval":
			spec.Sched.Interval, err = parseDur(val)
		case "duration":
			spec.Sched.Duration, err = parseDur(val)
		case "jitter":
			spec.Sched.Jitter, err = parseDur(val)
		case "count":
			spec.Sched.Count, err = strconv.Atoi(val)
		case "seed":
			spec.Sched.Seed, err = strconv.ParseUint(val, 10, 64)
		case "target":
			spec.Target = val
		case "delay":
			spec.Delay, err = parseDur(val)
		case "latency":
			spec.Latency, err = parseDur(val)
		case "loss":
			spec.Loss, err = strconv.ParseFloat(val, 64)
			// NaN compares false against both bounds, so without its own
			// check "loss=NaN" parsed as a valid spec (found by
			// FuzzParseScenario); every subsequent roll against it is
			// false, silently disabling the shape.
			if err == nil && (math.IsNaN(spec.Loss) || spec.Loss < 0 || spec.Loss > 1) {
				err = fmt.Errorf("loss outside [0,1]")
			}
		default:
			return Spec{}, fmt.Errorf("faults: unknown key %q in %q", key, text)
		}
		if err != nil {
			return Spec{}, fmt.Errorf("faults: %q: %v", kv, err)
		}
	}
	return spec, nil
}

func parseDur(s string) (time.Duration, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	if d <= 0 {
		return 0, fmt.Errorf("duration %v not positive", d)
	}
	return d, nil
}

// Package faults is the wall-clock fault-injection subsystem: the
// real-HTTP twin of internal/mbneck's simulated injectors. A fault is a
// Shape (what breaks: freeze, GC pause, slow response, crash+restart,
// network latency/loss) bound to a Schedule (when it breaks: periodic
// with jitter, random, one-shot) by an Injector, which emits
// fault_start/fault_end events into an obs.EventLog so experiment
// post-processing can correlate injected windows with the balancer's
// observed behavior — the paper's fine-grained timeline analysis,
// driven against live goroutines instead of virtual time.
//
// Shapes act through narrow interfaces (Staller, Delayer, Restarter)
// implemented by httpcluster.AppServer, and through a fault-wrapping
// http.RoundTripper for the network shapes, so the package depends only
// on internal/obs and the standard library.
package faults

import (
	"time"

	"millibalance/internal/obs"
)

// Staller freezes all request progress for a window — the
// dirty-page-writeback millibottleneck (httpcluster.AppServer.Stall).
type Staller interface {
	Stall(d time.Duration)
}

// Delayer inflates per-request service time until cleared — the
// slow-response degradation shape (httpcluster.AppServer.SetExtraDelay).
type Delayer interface {
	SetExtraDelay(d time.Duration)
}

// Restarter crashes and later revives a server on a stable address
// (httpcluster.AppServer.Crash/Restart).
type Restarter interface {
	Crash()
	Restart() error
}

// Shape is one way a backend (or its network path) can break. Open
// applies the fault for the window d and must return immediately; the
// shape is responsible for undoing itself after d elapses.
type Shape interface {
	// Kind names the fault taxonomy entry ("freeze", "gc_pause", ...).
	Kind() string
	// Target names the afflicted backend (or host), for event records.
	Target() string
	// Open applies the fault for the window d, returning immediately.
	Open(d time.Duration)
}

// Freeze is the writeback-style stall: all in-flight and new requests
// on the target pause at the next stall gate for the window.
type Freeze struct {
	Name string
	S    Staller
}

func (f Freeze) Kind() string         { return "freeze" }
func (f Freeze) Target() string       { return f.Name }
func (f Freeze) Open(d time.Duration) { f.S.Stall(d) }

// GCPause is a stop-the-world garbage-collection pause. Mechanically it
// is the same full freeze as Freeze (the paper's point: both produce
// the identical millibottleneck signature) but it keeps its own
// taxonomy identity so event streams distinguish the injected cause.
type GCPause struct {
	Name string
	S    Staller
}

func (g GCPause) Kind() string         { return "gc_pause" }
func (g GCPause) Target() string       { return g.Name }
func (g GCPause) Open(d time.Duration) { g.S.Stall(d) }

// Slow inflates the target's per-request service time by Extra for the
// window, then restores it — degradation rather than a full stop, the
// shape a load balancer's response-time signal is supposed to catch.
type Slow struct {
	Name  string
	D     Delayer
	Extra time.Duration
}

func (s Slow) Kind() string   { return "slow" }
func (s Slow) Target() string { return s.Name }
func (s Slow) Open(d time.Duration) {
	s.D.SetExtraDelay(s.Extra)
	time.AfterFunc(d, func() { s.D.SetExtraDelay(0) })
}

// Crash kills the target for the window, then restarts it on the same
// address — the process-crash-plus-supervisor-restart scenario. Open
// connections are torn down, so the proxy sees hard errors, not stalls.
type Crash struct {
	Name string
	R    Restarter
}

func (c Crash) Kind() string   { return "crash" }
func (c Crash) Target() string { return c.Name }
func (c Crash) Open(d time.Duration) {
	c.R.Crash()
	time.AfterFunc(d, func() { _ = c.R.Restart() })
}

// Correlated opens several shapes for the same window — the
// multi-backend correlated fault (e.g. a shared storage hiccup freezing
// every replica at once), the scenario where routing around the
// bottleneck is impossible and only shedding degrades gracefully.
type Correlated []Shape

func (c Correlated) Kind() string { return "correlated" }
func (c Correlated) Target() string {
	t := ""
	for i, s := range c {
		if i > 0 {
			t += "+"
		}
		t += s.Target()
	}
	return t
}
func (c Correlated) Open(d time.Duration) {
	for _, s := range c {
		s.Open(d)
	}
}

// Fault is a runnable injector: Arm wires the event log, Start launches
// the schedule, Stop halts it (idempotent).
type Fault interface {
	// Name identifies the injector ("freeze:periodic", ...).
	Name() string
	// Arm attaches the event log and epoch used for fault_start /
	// fault_end records. Call before Start.
	Arm(log *obs.EventLog, epoch time.Time)
	// Start launches the injection schedule in a background goroutine.
	Start()
	// Stop halts the schedule and waits for the runner to exit. Fault
	// windows already opened still close on their own timers.
	Stop()
}

package faults

import (
	"math/rand/v2"
	"sync"
	"time"

	"millibalance/internal/obs"
)

// ScheduleKind selects the arrival process of fault windows.
type ScheduleKind int

const (
	// Periodic opens a window every Interval ± uniform Jitter — the
	// simulator's PeriodicStalls (dirty-page writeback cadence).
	Periodic ScheduleKind = iota
	// Random opens windows as a Poisson process with mean gap Interval
	// — the simulator's RandomStalls (JVM GC arrivals).
	Random
	// OneShot opens a single window after Interval, then stops — the
	// scripted what-happens-at-t scenario.
	OneShot
)

func (k ScheduleKind) String() string {
	switch k {
	case Periodic:
		return "periodic"
	case Random:
		return "random"
	case OneShot:
		return "oneshot"
	default:
		return "schedule(?)"
	}
}

// Schedule describes when fault windows open.
type Schedule struct {
	Kind ScheduleKind
	// Interval is the periodic gap, the random mean gap, or the
	// one-shot delay.
	Interval time.Duration
	// Duration is the window length.
	Duration time.Duration
	// Jitter, for Periodic, spreads each gap uniformly over
	// [Interval-Jitter, Interval+Jitter].
	Jitter time.Duration
	// Count, when positive, stops the schedule after that many windows.
	Count int
	// Seed makes the jittered/random gaps reproducible; zero derives a
	// fixed default so runs are deterministic unless varied explicitly.
	Seed uint64
}

// Injector binds a Shape to a Schedule and runs it, emitting
// fault_start/fault_end events. Construct with NewInjector.
type Injector struct {
	shape Shape
	sched Schedule

	log   *obs.EventLog
	epoch time.Time

	mu      sync.Mutex
	stop    chan struct{}
	wg      sync.WaitGroup
	fired   int
	started bool
}

// NewInjector binds shape to sched.
func NewInjector(shape Shape, sched Schedule) *Injector {
	if sched.Interval <= 0 {
		sched.Interval = 500 * time.Millisecond
	}
	if sched.Duration <= 0 {
		sched.Duration = 200 * time.Millisecond
	}
	return &Injector{shape: shape, sched: sched}
}

// Name identifies the injector as shapeKind:scheduleKind.
func (in *Injector) Name() string {
	return in.shape.Kind() + ":" + in.sched.Kind.String()
}

// Shape returns the bound shape.
func (in *Injector) Shape() Shape { return in.shape }

// Fired reports opened windows.
func (in *Injector) Fired() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired
}

// Arm attaches the event log and epoch. Call before Start.
func (in *Injector) Arm(log *obs.EventLog, epoch time.Time) {
	in.mu.Lock()
	in.log = log
	in.epoch = epoch
	in.mu.Unlock()
}

// Start launches the schedule. A second Start is a no-op until Stop.
func (in *Injector) Start() {
	in.mu.Lock()
	if in.started {
		in.mu.Unlock()
		return
	}
	in.started = true
	in.stop = make(chan struct{})
	stop := in.stop
	in.mu.Unlock()
	in.wg.Add(1)
	go in.run(stop)
}

// Stop halts the schedule and waits for the runner goroutine. Windows
// already open close on their own timers. Idempotent.
func (in *Injector) Stop() {
	in.mu.Lock()
	if !in.started {
		in.mu.Unlock()
		return
	}
	in.started = false
	close(in.stop)
	in.mu.Unlock()
	in.wg.Wait()
}

func (in *Injector) run(stop chan struct{}) {
	defer in.wg.Done()
	seed := in.sched.Seed
	if seed == 0 {
		seed = 0x6d696c6c69 // deterministic default
	}
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	for n := 0; in.sched.Count <= 0 || n < in.sched.Count; n++ {
		var gap time.Duration
		switch in.sched.Kind {
		case Random:
			gap = time.Duration(rng.ExpFloat64() * float64(in.sched.Interval))
		case OneShot:
			gap = in.sched.Interval
		default: // Periodic
			gap = in.sched.Interval
			if j := in.sched.Jitter; j > 0 {
				gap += time.Duration(rng.Int64N(int64(2*j))) - j
			}
		}
		if gap < 0 {
			gap = 0
		}
		t := time.NewTimer(gap)
		select {
		case <-stop:
			t.Stop()
			return
		case <-t.C:
		}
		in.open()
		if in.sched.Kind == OneShot {
			return
		}
	}
}

// open fires one fault window and schedules its closing event.
func (in *Injector) open() {
	in.mu.Lock()
	in.fired++
	log, epoch := in.log, in.epoch
	in.mu.Unlock()
	d := in.sched.Duration
	if log != nil {
		log.Append(obs.Event{
			T:       time.Since(epoch),
			Kind:    obs.KindFaultStart,
			Source:  in.Name(),
			Backend: in.shape.Target(),
			Fault:   in.shape.Kind(),
			Window:  d,
		})
		time.AfterFunc(d, func() {
			log.Append(obs.Event{
				T:       time.Since(epoch),
				Kind:    obs.KindFaultEnd,
				Source:  in.Name(),
				Backend: in.shape.Target(),
				Fault:   in.shape.Kind(),
				Window:  d,
			})
		})
	}
	in.shape.Open(d)
}

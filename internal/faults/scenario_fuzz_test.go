package faults

import (
	"math"
	"strings"
	"testing"
)

// FuzzParseScenario asserts the parser's postcondition: whatever bytes
// arrive, ParseScenario either returns an error or returns specs that
// satisfy every documented invariant — a known shape, a valid schedule
// kind, positive interval and duration, and a finite loss within
// [0, 1]. The NaN-loss hole ("loss=NaN" parsed as valid because NaN
// compares false against both bounds) was found by exactly this
// property.
func FuzzParseScenario(f *testing.F) {
	f.Add("freeze:periodic:interval=2s:duration=300ms:jitter=500ms:target=app1")
	f.Add("netloss:oneshot:interval=5s:duration=1s:loss=0.5:target=app2,slow:random:delay=50ms:seed=7")
	f.Add("crash:periodic:count=3")
	f.Add("netloss:oneshot:loss=NaN")
	f.Add("netloss:oneshot:loss=+Inf")
	f.Add("gc_pause:random:interval=1s:duration=10ms")
	f.Add("freeze:periodic:duration=-5s")
	f.Add(":" + strings.Repeat(":", 40))
	f.Fuzz(func(t *testing.T, text string) {
		specs, err := ParseScenario(text)
		if err != nil {
			return
		}
		if len(specs) == 0 {
			t.Fatal("nil error with zero specs")
		}
		for i, s := range specs {
			switch s.ShapeKind {
			case "freeze", "gc_pause", "slow", "crash", "netdelay", "netloss":
			default:
				t.Errorf("spec %d: unknown shape %q accepted", i, s.ShapeKind)
			}
			switch s.Sched.Kind {
			case Periodic, Random, OneShot:
			default:
				t.Errorf("spec %d: invalid schedule kind %v accepted", i, s.Sched.Kind)
			}
			if s.Sched.Interval <= 0 || s.Sched.Duration <= 0 {
				t.Errorf("spec %d: non-positive window %v/%v accepted", i, s.Sched.Interval, s.Sched.Duration)
			}
			if s.Sched.Jitter < 0 {
				t.Errorf("spec %d: negative jitter %v accepted", i, s.Sched.Jitter)
			}
			if math.IsNaN(s.Loss) || math.IsInf(s.Loss, 0) || s.Loss < 0 || s.Loss > 1 {
				t.Errorf("spec %d: loss %g outside [0,1] accepted", i, s.Loss)
			}
			if s.Delay < 0 || s.Latency < 0 {
				t.Errorf("spec %d: negative delay/latency %v/%v accepted", i, s.Delay, s.Latency)
			}
		}
	})
}

// TestParseScenarioRejectsNonFiniteLoss is the direct regression for
// the NaN hole, independent of the fuzzer.
func TestParseScenarioRejectsNonFiniteLoss(t *testing.T) {
	for _, bad := range []string{"loss=NaN", "loss=nan", "loss=+Inf", "loss=Inf", "loss=-Inf"} {
		if _, err := ParseScenario("netloss:oneshot:" + bad); err == nil {
			t.Errorf("ParseScenario accepted %q", bad)
		}
	}
	if _, err := ParseScenario("netloss:oneshot:loss=0.25"); err != nil {
		t.Errorf("ParseScenario rejected a valid loss: %v", err)
	}
}

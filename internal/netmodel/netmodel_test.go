package netmodel

import (
	"testing"
	"testing/quick"
	"time"

	"millibalance/internal/sim"
)

func TestListenerAcceptsUpToBacklog(t *testing.T) {
	l := NewListener(2)
	if !l.Offer(func() {}) || !l.Offer(func() {}) {
		t.Fatal("offers within backlog were dropped")
	}
	if l.Offer(func() {}) {
		t.Fatal("offer beyond backlog was admitted")
	}
	if l.Len() != 2 || l.Drops() != 1 || l.Offered() != 3 {
		t.Fatalf("Len=%d Drops=%d Offered=%d", l.Len(), l.Drops(), l.Offered())
	}
}

func TestListenerAcceptFIFO(t *testing.T) {
	l := NewListener(10)
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		l.Offer(func() { got = append(got, i) })
	}
	for l.Accept() {
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("accept order = %v", got)
		}
	}
}

func TestListenerAcceptEmpty(t *testing.T) {
	l := NewListener(1)
	if l.Accept() {
		t.Fatal("Accept on empty returned true")
	}
}

func TestListenerZeroBacklogDropsEverything(t *testing.T) {
	l := NewListener(0)
	if l.Offer(func() {}) {
		t.Fatal("zero-backlog listener admitted a connection")
	}
	if l := NewListener(-3); l.Backlog() != 0 {
		t.Fatalf("negative backlog = %d", l.Backlog())
	}
}

func TestListenerFreesSlotAfterAccept(t *testing.T) {
	l := NewListener(1)
	l.Offer(func() {})
	l.Accept()
	if !l.Offer(func() {}) {
		t.Fatal("slot not freed after accept")
	}
}

// Property: offered == admitted + dropped, and Len never exceeds backlog.
func TestQuickListenerConservation(t *testing.T) {
	f := func(ops []bool, backlogRaw uint8) bool {
		backlog := int(backlogRaw % 16)
		l := NewListener(backlog)
		admitted := uint64(0)
		acceptedRuns := uint64(0)
		for _, offer := range ops {
			if offer {
				if l.Offer(func() { acceptedRuns++ }) {
					admitted++
				}
			} else {
				l.Accept()
			}
			if l.Len() > backlog {
				return false
			}
		}
		if l.Offered() != admitted+l.Drops() {
			return false
		}
		return acceptedRuns+uint64(l.Len()) == admitted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRetransmitterImmediateSuccess(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	r := NewRetransmitter(eng, nil)
	calls := 0
	r.Send(func() bool { calls++; return true }, func() { t.Fatal("onFail on success") })
	eng.Run(10 * time.Second)
	if calls != 1 || r.Retransmits() != 0 {
		t.Fatalf("calls=%d retransmits=%d", calls, r.Retransmits())
	}
}

func TestRetransmitterRetriesOnSchedule(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	r := NewRetransmitter(eng, RetransmitSchedule{time.Second, 2 * time.Second})
	var attemptTimes []sim.Time
	attempts := 0
	r.Send(func() bool {
		attemptTimes = append(attemptTimes, eng.Now())
		attempts++
		return attempts == 3 // succeed on the third attempt
	}, nil)
	eng.Run(10 * time.Second)
	want := []sim.Time{0, time.Second, 3 * time.Second}
	if len(attemptTimes) != len(want) {
		t.Fatalf("attempts at %v", attemptTimes)
	}
	for i := range want {
		if attemptTimes[i] != want[i] {
			t.Fatalf("attempts at %v, want %v", attemptTimes, want)
		}
	}
	if r.Retransmits() != 2 {
		t.Fatalf("Retransmits = %d", r.Retransmits())
	}
}

func TestRetransmitterExhaustionFails(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	r := NewRetransmitter(eng, RetransmitSchedule{time.Second, time.Second, time.Second})
	attempts := 0
	failed := false
	var failAt sim.Time
	r.Send(func() bool { attempts++; return false }, func() { failed = true; failAt = eng.Now() })
	eng.Run(10 * time.Second)
	if attempts != 4 { // initial + 3 retries
		t.Fatalf("attempts = %d, want 4", attempts)
	}
	if !failed || failAt != 3*time.Second {
		t.Fatalf("failed=%v at %v, want at 3s", failed, failAt)
	}
	if r.Failures() != 1 {
		t.Fatalf("Failures = %d", r.Failures())
	}
}

func TestRetransmitterNilOnFail(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	r := NewRetransmitter(eng, RetransmitSchedule{time.Millisecond})
	r.Send(func() bool { return false }, nil)
	eng.Run(time.Second) // must not panic
	if r.Failures() != 1 {
		t.Fatalf("Failures = %d", r.Failures())
	}
}

func TestRetransmitterEmptySchedule(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	r := NewRetransmitter(eng, RetransmitSchedule{})
	failed := false
	r.Send(func() bool { return false }, func() { failed = true })
	eng.Run(time.Second)
	if !failed {
		t.Fatal("empty schedule did not fail immediately")
	}
}

func TestDefaultRetransmitScheduleShape(t *testing.T) {
	s := DefaultRetransmitSchedule()
	if len(s) != 3 {
		t.Fatalf("default schedule length = %d", len(s))
	}
	for _, d := range s {
		if d != time.Second {
			t.Fatalf("default schedule = %v", s)
		}
	}
}

func TestLinkDeliversAfterLatency(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	link := NewLink(eng, 200*time.Microsecond)
	var at sim.Time = -1
	link.Deliver(func() { at = eng.Now() })
	eng.Run(time.Second)
	if at != 200*time.Microsecond {
		t.Fatalf("delivered at %v", at)
	}
}

func TestLinkZeroLatencySynchronous(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	link := NewLink(eng, 0)
	fired := false
	link.Deliver(func() { fired = true })
	if !fired {
		t.Fatal("zero-latency delivery was not synchronous")
	}
}

func TestLinkNegativeLatencyClamped(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	if l := NewLink(eng, -time.Second); l.Latency() != 0 {
		t.Fatalf("Latency = %v", l.Latency())
	}
}

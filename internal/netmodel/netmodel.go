// Package netmodel models the slice of TCP behaviour that matters for the
// paper's very-long-response-time (VLRT) mechanics: a bounded listen
// backlog that drops connection attempts when full, client-side
// retransmission of dropped attempts on a fixed schedule (the source of
// the paper's 1 s / 2 s / 3 s response-time clusters, Fig. 4), and a
// fixed-latency LAN link.
package netmodel

import (
	"time"

	"millibalance/internal/obs"
	"millibalance/internal/sim"
)

// RetransmitSchedule lists the delays between successive connection
// attempts after drops. When the schedule is exhausted the request fails.
type RetransmitSchedule []sim.Time

// DefaultRetransmitSchedule mirrors the retransmission timing observed in
// the paper's environment: three retries spaced one second apart, which
// stamps dropped requests into response-time clusters at ≈1 s, 2 s, 3 s.
func DefaultRetransmitSchedule() RetransmitSchedule {
	return RetransmitSchedule{time.Second, time.Second, time.Second}
}

// Listener is a bounded accept queue (listen backlog). Connections that
// arrive while the backlog is full are dropped — the paper's
// "Cross-Tier Queue Overflow".
type Listener struct {
	backlog int
	queue   sim.FIFO[func()]
	drops   uint64
	offered uint64
}

// NewListener returns a listener with the given backlog capacity.
// A negative capacity is treated as zero (every queued offer drops).
func NewListener(backlog int) *Listener {
	if backlog < 0 {
		backlog = 0
	}
	return &Listener{backlog: backlog}
}

// Backlog returns the queue capacity.
func (l *Listener) Backlog() int { return l.backlog }

// Len reports how many connections are waiting to be accepted.
func (l *Listener) Len() int { return l.queue.Len() }

// Drops reports how many offers have been dropped.
func (l *Listener) Drops() uint64 { return l.drops }

// Offered reports how many offers have been made.
func (l *Listener) Offered() uint64 { return l.offered }

// Offer enqueues accept to run when the connection is accepted. It
// reports false — and drops the connection — when the backlog is full.
func (l *Listener) Offer(accept func()) bool {
	l.offered++
	if l.queue.Len() >= l.backlog {
		l.drops++
		return false
	}
	l.queue.Push(accept)
	return true
}

// Accept dequeues and runs the oldest waiting connection, reporting
// whether one was waiting.
func (l *Listener) Accept() bool {
	accept, ok := l.queue.Pop()
	if !ok {
		return false
	}
	accept()
	return true
}

// Retransmitter retries dropped connection attempts on a schedule.
type Retransmitter struct {
	eng      *sim.Engine
	schedule RetransmitSchedule

	retransmits uint64
	failures    uint64
}

// NewRetransmitter returns a retransmitter using the given schedule; a
// nil schedule uses the default.
func NewRetransmitter(eng *sim.Engine, schedule RetransmitSchedule) *Retransmitter {
	if schedule == nil {
		schedule = DefaultRetransmitSchedule()
	}
	return &Retransmitter{eng: eng, schedule: schedule}
}

// Retransmits reports how many retry attempts have been scheduled.
func (r *Retransmitter) Retransmits() uint64 { return r.retransmits }

// Failures reports how many sends exhausted the schedule and failed.
func (r *Retransmitter) Failures() uint64 { return r.failures }

// Send runs attempt, which reports whether the connection was admitted.
// On a drop it retries after the next schedule delay; when the schedule
// is exhausted it calls onFail (which may be nil).
func (r *Retransmitter) Send(attempt func() bool, onFail func()) {
	r.sendFrom(nil, 0, attempt, onFail)
}

// SendSpan is Send with request-lifecycle tracing: sp (which may be
// nil) records the retransmit-wait stage from the first drop until the
// attempt that is finally admitted or the schedule is exhausted — the
// wait that stamps VLRT requests into the 1 s / 2 s / 3 s clusters.
func (r *Retransmitter) SendSpan(sp *obs.Span, attempt func() bool, onFail func()) {
	r.sendFrom(sp, 0, attempt, onFail)
}

func (r *Retransmitter) sendFrom(sp *obs.Span, tries int, attempt func() bool, onFail func()) {
	if attempt() {
		sp.Exit(obs.StageRetransmitWait, r.eng.Now())
		return
	}
	if tries >= len(r.schedule) {
		r.failures++
		sp.Exit(obs.StageRetransmitWait, r.eng.Now())
		if onFail != nil {
			onFail()
		}
		return
	}
	r.retransmits++
	sp.Enter(obs.StageRetransmitWait, r.eng.Now())
	r.eng.Schedule(r.schedule[tries], func() {
		r.sendFrom(sp, tries+1, attempt, onFail)
	})
}

// Link is a fixed-latency network hop. Bandwidth is not modelled; the
// paper's gigabit LAN never saturates.
type Link struct {
	eng     *sim.Engine
	latency sim.Time
}

// NewLink returns a link with the given one-way latency (clamped at
// zero).
func NewLink(eng *sim.Engine, latency sim.Time) *Link {
	if latency < 0 {
		latency = 0
	}
	return &Link{eng: eng, latency: latency}
}

// Latency returns the one-way latency.
func (l *Link) Latency() sim.Time { return l.latency }

// Deliver runs fn after one link traversal.
func (l *Link) Deliver(fn func()) {
	if l.latency == 0 {
		fn()
		return
	}
	l.eng.Schedule(l.latency, fn)
}

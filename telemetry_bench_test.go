// Benchmark guard for the telemetry layer's pay-for-what-you-use
// claim, the PR 6 twin of the tracing guard in obs_bench_test.go: the
// "disabled" sub-benchmark runs the simulation with no timeline sampler
// and must stay within noise of the untouched hot path, while "enabled"
// runs the identical cluster with 50 ms sub-second sampling and the
// online correlator armed. cmd/perfbench -pr6 records the same pair in
// BENCH_PR6.json with a ≤5 % overhead budget.
package millibalance_test

import (
	"testing"
	"time"

	"millibalance/internal/cluster"
	"millibalance/internal/telemetry"
)

func BenchmarkTelemetrySamplingOverhead(b *testing.B) {
	base := cluster.MiniConfig()
	base.Duration = 5 * time.Second
	run := func(b *testing.B, enabled bool) {
		for i := 0; i < b.N; i++ {
			// The arms differ only in Telemetry, so the delta is the
			// sampler alone (the online correlator additionally needs an
			// event log; its cost rides the tracing guard's budget).
			cfg := base
			if enabled {
				cfg.Telemetry = &telemetry.Config{}
			}
			res := cluster.Run(cfg)
			if res.Responses.Total() == 0 {
				b.Fatal("no requests completed")
			}
			b.ReportMetric(float64(res.Responses.Total()), "requests")
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/1e6, "ms/run")
	}
	b.Run("disabled", func(b *testing.B) { run(b, false) })
	b.Run("enabled", func(b *testing.B) { run(b, true) })
}

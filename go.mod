module millibalance

go 1.22

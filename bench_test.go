// Benchmarks regenerating the paper's evaluation: one benchmark per
// table and figure. Each iteration executes the corresponding experiment
// end-to-end on the simulated paper-scale testbed and reports the
// headline findings as custom benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation and prints the shape of every result
// (who wins, by what factor, where the VLRT clusters fall).
package millibalance_test

import (
	"testing"

	"millibalance/internal/experiments"
)

// benchOpt runs each experiment at 1/6 of the paper's 180 s duration —
// long enough for six flush cycles per application server.
var benchOpt = experiments.Options{DurationScale: 1.0 / 6}

func BenchmarkTableISummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunTableI(benchOpt)
		orig := res.Row("total_request", "original_get_endpoint")
		cur := res.Row("current_load", "original_get_endpoint")
		b.ReportMetric(res.ImprovementFactor(), "improvement_x")
		b.ReportMetric(orig.AvgRTMillis, "orig_mean_ms")
		b.ReportMetric(cur.AvgRTMillis, "remedy_mean_ms")
		b.ReportMetric(orig.VLRTPct, "orig_vlrt_pct")
		b.ReportMetric(cur.VLRTPct, "remedy_vlrt_pct")
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkFigure1Baseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunFigure1(benchOpt)
		b.ReportMetric(res.AvgRTMillis, "mean_ms")
		b.ReportMetric(float64(res.VLRTCount), "vlrt_total")
		b.ReportMetric(res.MaxWindowRTMillis, "worst_window_ms")
	}
}

func BenchmarkFigure2CausalChain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunFigure2(benchOpt)
		b.ReportMetric(float64(res.VLRTTotal), "vlrt_total")
		b.ReportMetric(float64(len(res.Saturations)), "millibottlenecks")
		b.ReportMetric(res.Attribution*100, "vlrt_attribution_pct")
		b.ReportMetric(res.QueueCPUPearson, "queue_cpu_pearson")
	}
}

func BenchmarkFigure3PointInTimeRT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunFigure3(benchOpt)
		b.ReportMetric(res.PeakWindowRTMillis, "peak_window_ms")
		b.ReportMetric(res.FluctuationRatio, "peak_over_median_x")
	}
}

func BenchmarkFigure4RTDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunFigure4(benchOpt)
		b.ReportMetric(float64(res.ClusterCounts[0]), "cluster_1s")
		b.ReportMetric(float64(res.ClusterCounts[1]), "cluster_2s")
		b.ReportMetric(float64(res.ClusterCounts[2]), "cluster_3s")
	}
}

func BenchmarkFigure5AvgCPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunFigure5(benchOpt)
		b.ReportMetric(res.MaxAverage, "max_avg_cpu_pct")
	}
}

func reportInstability(b *testing.B, res experiments.InstabilityResult) {
	b.Helper()
	b.ReportMetric(res.StalledShare[0]*100, "phase1_share_pct")
	b.ReportMetric(res.StalledShare[1]*100, "phase2_share_pct")
	b.ReportMetric(res.StalledShare[2]*100, "phase3_share_pct")
	b.ReportMetric(res.StalledShare[3]*100, "phase4_share_pct")
	b.ReportMetric(res.StalledQueuePeak, "stalled_queue_peak")
	b.ReportMetric(float64(res.VLRTTotal), "vlrt_total")
}

func BenchmarkFigure6TotalRequestInstability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportInstability(b, experiments.RunFigure6(benchOpt))
	}
}

func BenchmarkFigure7TotalTrafficInstability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportInstability(b, experiments.RunFigure7(benchOpt))
	}
}

func BenchmarkFigure8ModifiedGetEndpointQueues(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunFigure8(benchOpt)
		b.ReportMetric(res.AppTierPeak, "remedy_app_peak")
		b.ReportMetric(res.OriginalAppTierPeak, "orig_app_peak")
		b.ReportMetric(res.QueueReductionPct(), "queue_reduction_pct")
	}
}

func BenchmarkFigure9ModifiedGetEndpointDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportInstability(b, experiments.RunFigure9(benchOpt))
	}
}

func reportLBValues(b *testing.B, res experiments.LBValueResult) {
	b.Helper()
	bool01 := func(v bool) float64 {
		if v {
			return 1
		}
		return 0
	}
	b.ReportMetric(bool01(res.StalledIsMinDuringStall), "stalled_is_min")
	b.ReportMetric(bool01(res.StalledIsMaxDuringRecovery), "recovery_spike")
}

func BenchmarkFigure10TotalRequestLbValues(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportLBValues(b, experiments.RunFigure10(benchOpt))
	}
}

func BenchmarkFigure11TotalTrafficLbValues(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportLBValues(b, experiments.RunFigure11(benchOpt))
	}
}

func BenchmarkFigure12CurrentLoadQueues(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunFigure12(benchOpt)
		b.ReportMetric(res.AppTierPeak, "remedy_app_peak")
		b.ReportMetric(res.OriginalAppTierPeak, "orig_app_peak")
	}
}

func BenchmarkFigure13CurrentLoadDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunFigure13(benchOpt)
		reportInstability(b, res)
		b.ReportMetric(res.HealthyQueuePeak, "healthy_queue_peak")
	}
}

// BenchmarkGeneralization backs the paper's concluding claim: the
// remedies shorten the latency tail for millibottlenecks from every
// cause the paper catalogs — dirty-page flushing, GC pauses,
// VM-colocation interference and bursty workloads.
func BenchmarkGeneralization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunGeneralization(benchOpt)
		for _, c := range res.Causes {
			b.ReportMetric(c.ImprovementX, c.Cause+"_improve_x")
		}
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

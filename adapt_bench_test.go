// Benchmark guard for the adaptive control plane's pay-for-what-you-use
// claim: with Config.Adaptive nil the cluster runs the exact static code
// path (no controller, no event hook, no tick timer), so the "disabled"
// sub-benchmark must stay within noise of the plain simulation. The
// "enabled" twin arms the controller with its defaults on the identical
// cluster, making the full closed-loop cost directly comparable.
package millibalance_test

import (
	"testing"
	"time"

	"millibalance/internal/adapt"
	"millibalance/internal/cluster"
)

func BenchmarkAdaptiveDisabledOverhead(b *testing.B) {
	base := cluster.MiniConfig()
	base.Duration = 5 * time.Second
	run := func(b *testing.B, enabled bool) {
		for i := 0; i < b.N; i++ {
			cfg := base
			if enabled {
				cfg.Adaptive = &adapt.Config{}
			}
			res := cluster.Run(cfg)
			if res.Responses.Total() == 0 {
				b.Fatal("no requests completed")
			}
			b.ReportMetric(float64(res.Responses.Total()), "requests")
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/1e6, "ms/run")
	}
	b.Run("disabled", func(b *testing.B) { run(b, false) })
	b.Run("enabled", func(b *testing.B) { run(b, true) })
}
